//! The ledger: account balances, a monotone clock, and an append-only
//! transaction log.

use std::collections::HashMap;

use ens_types::{Address, BlockNumber, Duration, Timestamp, TxHash, Wei, SECONDS_PER_BLOCK};
use serde::{Deserialize, Serialize};

use crate::error::ChainError;
use crate::tx::{Transaction, TxKind};

/// Fee policy applied to every (non-mint) transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GasPolicy {
    /// No fees — the default for analysis runs, where fees only add noise.
    Free,
    /// A flat fee per transaction, credited to the fee sink account.
    FlatFee(Wei),
}

/// A deterministic, single-threaded Ethereum-like ledger.
///
/// ```
/// use ens_types::{Address, Timestamp, Wei};
/// use sim_chain::{Chain, TxKind};
///
/// let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
/// let (alice, bob) = (Address::derive(b"alice"), Address::derive(b"bob"));
/// chain.mint(alice, Wei::from_eth(10));
/// chain.transfer(alice, bob, Wei::from_eth(3), TxKind::Transfer).unwrap();
/// assert_eq!(chain.balance(bob), Wei::from_eth(3));
/// assert_eq!(chain.total_balance(), chain.total_minted());
/// ```
///
/// This is the substrate everything else runs on: the ENS contracts debit
/// registration fees through it, the workload's senders move funds through
/// it, and `etherscan-sim` indexes its transaction log. Blocks are purely a
/// function of the clock (one every [`SECONDS_PER_BLOCK`] seconds since
/// genesis), which keeps replays bit-for-bit reproducible.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Chain {
    genesis: Timestamp,
    now: Timestamp,
    balances: HashMap<Address, Wei>,
    transactions: Vec<Transaction>,
    gas: GasPolicy,
    fee_sink: Address,
    minted: Wei,
    fees_collected: Wei,
}

impl Chain {
    /// Creates a ledger whose genesis block is at `genesis`.
    pub fn new(genesis: Timestamp) -> Chain {
        Chain {
            genesis,
            now: genesis,
            balances: HashMap::new(),
            transactions: Vec::new(),
            gas: GasPolicy::Free,
            fee_sink: Address::derive(b"sim-chain/fee-sink"),
            minted: Wei::ZERO,
            fees_collected: Wei::ZERO,
        }
    }

    /// Sets the fee policy (default [`GasPolicy::Free`]).
    pub fn with_gas_policy(mut self, gas: GasPolicy) -> Chain {
        self.gas = gas;
        self
    }

    /// Current chain time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Genesis time.
    pub fn genesis(&self) -> Timestamp {
        self.genesis
    }

    /// Current block height, derived from the clock.
    pub fn block_number(&self) -> BlockNumber {
        BlockNumber((self.now.0 - self.genesis.0) / SECONDS_PER_BLOCK)
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Moves the clock to an absolute time, which must not be in the past.
    pub fn advance_to(&mut self, t: Timestamp) -> Result<(), ChainError> {
        if t < self.now {
            return Err(ChainError::ClockWentBackwards {
                now: self.now,
                requested: t,
            });
        }
        self.now = t;
        Ok(())
    }

    /// Balance of `addr` (zero for unknown accounts).
    pub fn balance(&self, addr: Address) -> Wei {
        self.balances.get(&addr).copied().unwrap_or(Wei::ZERO)
    }

    /// Mints `value` into `to` (genesis allocation / faucet). Recorded as a
    /// transaction from [`Address::ZERO`] so indexers see a complete log.
    pub fn mint(&mut self, to: Address, value: Wei) -> TxHash {
        self.minted += value;
        *self.balances.entry(to).or_insert(Wei::ZERO) += value;
        self.push_tx(Address::ZERO, to, value, TxKind::Mint)
    }

    /// Transfers `value` from `from` to `to`, charging the gas fee on top.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        value: Wei,
        kind: TxKind,
    ) -> Result<TxHash, ChainError> {
        if value.is_zero() {
            return Err(ChainError::ZeroValueTransfer);
        }
        let fee = match self.gas {
            GasPolicy::Free => Wei::ZERO,
            GasPolicy::FlatFee(f) => f,
        };
        let needed = value + fee;
        let balance = self.balance(from);
        if balance < needed {
            return Err(ChainError::InsufficientFunds {
                from,
                balance,
                needed,
            });
        }
        *self.balances.get_mut(&from).expect("balance checked above") = balance - needed;
        *self.balances.entry(to).or_insert(Wei::ZERO) += value;
        if !fee.is_zero() {
            *self.balances.entry(self.fee_sink).or_insert(Wei::ZERO) += fee;
            self.fees_collected += fee;
        }
        Ok(self.push_tx(from, to, value, kind))
    }

    fn push_tx(&mut self, from: Address, to: Address, value: Wei, kind: TxKind) -> TxHash {
        let hash = Transaction::derive_hash(self.transactions.len() as u64, from, to, value);
        self.transactions.push(Transaction {
            hash,
            block: self.block_number(),
            timestamp: self.now,
            from,
            to,
            value,
            kind,
        });
        hash
    }

    /// The full, append-only transaction log in confirmation order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of confirmed transactions.
    pub fn transaction_count(&self) -> usize {
        self.transactions.len()
    }

    /// Total value ever minted.
    pub fn total_minted(&self) -> Wei {
        self.minted
    }

    /// Sum of all account balances. Always equals [`Chain::total_minted`] —
    /// transfers conserve value (fees are moved, not burned).
    pub fn total_balance(&self) -> Wei {
        self.balances.values().copied().sum()
    }

    /// Iterates over `(address, balance)` pairs in unspecified order.
    pub fn balances(&self) -> impl Iterator<Item = (Address, Wei)> + '_ {
        self.balances.iter().map(|(a, w)| (*a, *w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2020, 1, 1)
    }

    fn addr(s: &str) -> Address {
        Address::derive(s.as_bytes())
    }

    #[test]
    fn mint_and_transfer_move_value() {
        let mut chain = Chain::new(t0());
        chain.mint(addr("a"), Wei::from_eth(10));
        chain
            .transfer(addr("a"), addr("b"), Wei::from_eth(3), TxKind::Transfer)
            .unwrap();
        assert_eq!(chain.balance(addr("a")), Wei::from_eth(7));
        assert_eq!(chain.balance(addr("b")), Wei::from_eth(3));
        assert_eq!(chain.transaction_count(), 2);
    }

    #[test]
    fn transfer_rejects_insufficient_funds() {
        let mut chain = Chain::new(t0());
        chain.mint(addr("a"), Wei::from_eth(1));
        let err = chain
            .transfer(addr("a"), addr("b"), Wei::from_eth(2), TxKind::Transfer)
            .unwrap_err();
        assert!(matches!(err, ChainError::InsufficientFunds { .. }));
        // Failed transfers leave no trace.
        assert_eq!(chain.transaction_count(), 1);
        assert_eq!(chain.balance(addr("a")), Wei::from_eth(1));
    }

    #[test]
    fn transfer_rejects_zero_value() {
        let mut chain = Chain::new(t0());
        chain.mint(addr("a"), Wei::from_eth(1));
        assert_eq!(
            chain.transfer(addr("a"), addr("b"), Wei::ZERO, TxKind::Transfer),
            Err(ChainError::ZeroValueTransfer)
        );
    }

    #[test]
    fn value_is_conserved_with_fees() {
        let mut chain =
            Chain::new(t0()).with_gas_policy(GasPolicy::FlatFee(Wei::from_milli_eth(1)));
        chain.mint(addr("a"), Wei::from_eth(5));
        for _ in 0..10 {
            chain
                .transfer(
                    addr("a"),
                    addr("b"),
                    Wei::from_milli_eth(100),
                    TxKind::Transfer,
                )
                .unwrap();
        }
        assert_eq!(chain.total_balance(), chain.total_minted());
        assert_eq!(chain.fees_collected, Wei::from_milli_eth(10));
    }

    #[test]
    fn clock_is_monotone_and_drives_blocks() {
        let mut chain = Chain::new(t0());
        assert_eq!(chain.block_number(), BlockNumber(0));
        chain.advance(Duration::from_secs(120));
        assert_eq!(chain.block_number(), BlockNumber(10));
        let past = Timestamp(t0().0 + 60);
        assert!(matches!(
            chain.advance_to(past),
            Err(ChainError::ClockWentBackwards { .. })
        ));
        chain.advance_to(Timestamp(t0().0 + 240)).unwrap();
        assert_eq!(chain.block_number(), BlockNumber(20));
    }

    #[test]
    fn tx_hashes_are_unique_even_for_identical_payloads() {
        let mut chain = Chain::new(t0());
        chain.mint(addr("a"), Wei::from_eth(10));
        let h1 = chain
            .transfer(addr("a"), addr("b"), Wei::from_eth(1), TxKind::Transfer)
            .unwrap();
        let h2 = chain
            .transfer(addr("a"), addr("b"), Wei::from_eth(1), TxKind::Transfer)
            .unwrap();
        assert_ne!(h1, h2);
    }

    #[test]
    fn self_transfer_is_allowed_and_conserves() {
        let mut chain = Chain::new(t0());
        chain.mint(addr("a"), Wei::from_eth(2));
        chain
            .transfer(addr("a"), addr("a"), Wei::from_eth(1), TxKind::Transfer)
            .unwrap();
        assert_eq!(chain.balance(addr("a")), Wei::from_eth(2));
    }

    #[test]
    fn transactions_record_block_and_time() {
        let mut chain = Chain::new(t0());
        chain.advance(Duration::from_days(2));
        chain.mint(addr("a"), Wei::from_eth(1));
        let tx = chain.transactions().last().unwrap();
        assert_eq!(tx.timestamp, t0() + Duration::from_days(2));
        assert_eq!(tx.block, BlockNumber(2 * 86_400 / 12));
        assert_eq!(tx.kind, TxKind::Mint);
    }
}
