//! Ledger errors.

use std::fmt;

use ens_types::{Address, Wei};

/// Errors raised by ledger operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The sender's balance cannot cover value + fee.
    InsufficientFunds {
        /// Account that attempted to pay.
        from: Address,
        /// Balance at the time of the attempt.
        balance: Wei,
        /// Amount (value + fee) that was needed.
        needed: Wei,
    },
    /// Attempted to move the clock backwards.
    ClockWentBackwards {
        /// Current chain time.
        now: ens_types::Timestamp,
        /// Requested (earlier) time.
        requested: ens_types::Timestamp,
    },
    /// A transfer of zero value was rejected.
    ZeroValueTransfer,
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::InsufficientFunds {
                from,
                balance,
                needed,
            } => write!(
                f,
                "insufficient funds: {from} has {balance}, needs {needed}"
            ),
            ChainError::ClockWentBackwards { now, requested } => {
                write!(
                    f,
                    "clock went backwards: now {now:?}, requested {requested:?}"
                )
            }
            ChainError::ZeroValueTransfer => write!(f, "zero-value transfer"),
        }
    }
}

impl std::error::Error for ChainError {}
