//! Builds the subgraph's domain view from the raw ENS event log.

use std::collections::HashMap;

use ens_registry::{EnsEvent, EnsEventKind};
use ens_types::{keccak256, Address, EnsName, LabelHash, NameHash, Timestamp};
use serde::{Deserialize, Serialize};

use crate::model::{
    AddrEntry, DomainRecord, RegistrationEntry, RenewalEntry, SubdomainEntry, TransferEntry,
};

/// Indexing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SubgraphConfig {
    /// Probability that a domain's readable name is unrecoverable through
    /// the API, even though events carried it. The paper lost 34K of 3.1M
    /// names (≈1.1%) this way; pass `0.011` to mirror that, `0.0` for a
    /// perfect index.
    pub name_loss_rate: f64,
    /// Seed mixed into the per-domain loss decision.
    pub seed: u64,
}

impl Default for SubgraphConfig {
    fn default() -> Self {
        SubgraphConfig {
            name_loss_rate: 0.011,
            seed: 0,
        }
    }
}

impl SubgraphConfig {
    /// A lossless index (every name recoverable).
    pub fn lossless() -> SubgraphConfig {
        SubgraphConfig {
            name_loss_rate: 0.0,
            seed: 0,
        }
    }

    /// Deterministic per-domain decision: is this domain's name lost?
    pub(crate) fn loses_name(&self, label_hash: LabelHash) -> bool {
        if self.name_loss_rate <= 0.0 {
            return false;
        }
        let mut buf = [0u8; 40];
        buf[..32].copy_from_slice(&label_hash.0 .0);
        buf[32..].copy_from_slice(&self.seed.to_be_bytes());
        let h = keccak256(&buf);
        let r = u64::from_be_bytes(h[..8].try_into().expect("8 bytes")) as f64 / u64::MAX as f64;
        r < self.name_loss_rate
    }
}

/// Internal mutable index used while folding the event stream.
#[derive(Clone, Default)]
pub(crate) struct IndexState {
    pub domains: HashMap<LabelHash, DomainRecord>,
    /// namehash → label hash, learned from events that carry labels.
    pub node_to_label: HashMap<NameHash, LabelHash>,
    /// `AddrChanged` events we could not attribute to a known node.
    pub unattributed_addr_changes: usize,
    pub subdomain_count: usize,
    pub reverse_claims: usize,
    /// addr → (claim time, claimed full name) history, in event order.
    pub reverse_history: HashMap<Address, Vec<(Timestamp, String)>>,
    pub registrations: usize,
    pub renewals: usize,
    pub transfers: usize,
}

impl IndexState {
    pub(crate) fn apply(&mut self, event: &EnsEvent) {
        match &event.kind {
            EnsEventKind::NameRegistered {
                label_hash,
                label,
                owner,
                expires,
                base_cost,
                premium,
                legacy,
            } => {
                let record = self
                    .domains
                    .entry(*label_hash)
                    .or_insert_with(|| DomainRecord {
                        label_hash: *label_hash,
                        ..DomainRecord::default()
                    });
                if let Some(label) = label {
                    let name = EnsName::from_label(label.clone());
                    self.node_to_label.insert(name.namehash(), *label_hash);
                    record.name = Some(name);
                }
                record.registrations.push(RegistrationEntry {
                    owner: *owner,
                    registered_at: event.timestamp,
                    expires: *expires,
                    base_cost: *base_cost,
                    premium: *premium,
                    block: event.block,
                    tx: event.tx,
                    legacy: *legacy,
                });
                self.registrations += 1;
            }
            EnsEventKind::NameRenewed {
                label_hash,
                expires,
                cost,
                ..
            } => {
                if let Some(record) = self.domains.get_mut(label_hash) {
                    record.renewals.push(RenewalEntry {
                        at: event.timestamp,
                        new_expiry: *expires,
                        cost: *cost,
                        block: event.block,
                        tx: event.tx,
                    });
                    self.renewals += 1;
                }
            }
            EnsEventKind::NameTransferred {
                label_hash,
                from,
                to,
            } => {
                if let Some(record) = self.domains.get_mut(label_hash) {
                    record.transfers.push(TransferEntry {
                        at: event.timestamp,
                        from: *from,
                        to: *to,
                        block: event.block,
                    });
                    self.transfers += 1;
                }
            }
            EnsEventKind::AddrChanged { node, addr } => {
                match self.node_to_label.get(node) {
                    Some(label_hash) => {
                        if let Some(record) = self.domains.get_mut(label_hash) {
                            record.addr_changes.push(AddrEntry {
                                at: event.timestamp,
                                addr: *addr,
                            });
                        }
                    }
                    // Legacy domains whose plaintext we never saw: their
                    // namehash cannot be tied back to a label hash — the
                    // honest failure mode of hash-keyed storage (paper §3.1).
                    None => self.unattributed_addr_changes += 1,
                }
            }
            EnsEventKind::ReverseClaimed { addr, name } => {
                self.reverse_claims += 1;
                self.reverse_history
                    .entry(*addr)
                    .or_default()
                    .push((event.timestamp, name.clone()));
            }
            EnsEventKind::SubnodeCreated {
                parent,
                node,
                label,
                owner,
            } => {
                self.subdomain_count += 1;
                if let Some(label_hash) = self.node_to_label.get(parent) {
                    if let Some(record) = self.domains.get_mut(label_hash) {
                        record.subdomains.push(SubdomainEntry {
                            node: *node,
                            label: label.as_str().to_string(),
                            owner: *owner,
                            at: event.timestamp,
                        });
                    }
                }
            }
        }
    }
}
