//! # ens-subgraph
//!
//! A simulation of the ENS subgraph ([10] in the paper): an off-chain
//! indexer that folds the raw ENS event log into per-domain records and
//! serves them through a paged, GraphQL-flavoured API. The paper's data
//! collection (§3.1) is built entirely on this endpoint, including its
//! failure mode — 34K of 3.1M names (≈0.1%) could not be recovered due to
//! API limitations, modelled here by [`SubgraphConfig::name_loss_rate`].
//!
//! Build one with [`Subgraph::index`] over an [`ens_registry::EnsSystem`]'s
//! events, then page through [`Subgraph::domains`] like a crawler would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod indexer;
pub mod model;
pub mod query;

use ens_registry::EnsEvent;
use ens_types::{EnsName, LabelHash};
use indexer::IndexState;
pub use indexer::SubgraphConfig;
pub use model::{
    AddrEntry, DomainRecord, RegistrationEntry, RenewalEntry, SubdomainEntry, SubgraphStats,
    TransferEntry,
};
pub use query::{Page, PageRequest, MAX_PAGE_SIZE};

use std::collections::HashMap;
use std::sync::Arc;

use ens_types::{Address, PageError, PagedBatch, PagedSource, Timestamp};

/// A continuously syncing indexer, like the real subgraph node: feed it
/// event batches as the chain grows, snapshot a queryable [`Subgraph`]
/// whenever a crawler wants to page through it.
///
/// ```
/// use ens_subgraph::{SubgraphConfig, SubgraphIndexer};
/// let mut indexer = SubgraphIndexer::new();
/// indexer.sync(&[]); // nothing yet
/// let endpoint = indexer.snapshot(SubgraphConfig::lossless());
/// assert_eq!(endpoint.stats().domains, 0);
/// ```
#[derive(Default)]
pub struct SubgraphIndexer {
    state: indexer::IndexState,
    /// Next event id expected (events below this are skipped, making
    /// overlapping batches idempotent).
    cursor: u64,
}

impl SubgraphIndexer {
    /// An empty indexer.
    pub fn new() -> SubgraphIndexer {
        SubgraphIndexer::default()
    }

    /// Applies every not-yet-seen event (by id); overlapping or repeated
    /// batches are idempotent. Returns how many events were applied.
    pub fn sync(&mut self, events: &[EnsEvent]) -> usize {
        let mut applied = 0;
        for event in events {
            if event.id < self.cursor {
                continue;
            }
            self.state.apply(event);
            self.cursor = event.id + 1;
            applied += 1;
        }
        applied
    }

    /// Number of events applied so far.
    pub fn events_indexed(&self) -> u64 {
        self.cursor
    }

    /// Materializes a queryable endpoint from the current state.
    pub fn snapshot(&self, config: SubgraphConfig) -> Subgraph {
        Subgraph::from_state(self.state.clone(), config)
    }
}

/// The queryable subgraph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Domains ordered by label hash (the endpoint's stable order).
    ordered: Vec<DomainRecord>,
    /// label hash → index into `ordered`.
    by_hash: HashMap<LabelHash, usize>,
    /// full name → index into `ordered` (only for recovered names).
    by_name: HashMap<String, usize>,
    /// addr → (claim time, full name) primary-name history. Shared so that
    /// dataset assembly can take an owned snapshot without a deep copy.
    reverse_history: Arc<HashMap<Address, Vec<(Timestamp, String)>>>,
    stats: SubgraphStats,
    unattributed_addr_changes: usize,
}

impl Subgraph {
    /// Indexes a full event log.
    pub fn index(events: &[EnsEvent], config: SubgraphConfig) -> Subgraph {
        let mut state = IndexState::default();
        for event in events {
            state.apply(event);
        }
        Subgraph::from_state(state, config)
    }

    /// Materializes the endpoint view from folded indexer state.
    fn from_state(state: IndexState, config: SubgraphConfig) -> Subgraph {
        let mut unrecoverable = 0usize;
        let mut ordered: Vec<DomainRecord> = state
            .domains
            .into_values()
            .map(|mut record| {
                // Apply the API-limit loss model: some names are known to the
                // chain but not recoverable through the endpoint.
                if record.name.is_some() && config.loses_name(record.label_hash) {
                    record.name = None;
                }
                if record.name.is_none() {
                    unrecoverable += 1;
                }
                record
            })
            .collect();
        ordered.sort_by_key(|r| r.label_hash);

        let by_hash = ordered
            .iter()
            .enumerate()
            .map(|(i, r)| (r.label_hash, i))
            .collect();
        let by_name = ordered
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.name.as_ref().map(|n| (n.to_full(), i)))
            .collect();
        let stats = SubgraphStats {
            domains: ordered.len(),
            subdomains: state.subdomain_count,
            registrations: state.registrations,
            renewals: state.renewals,
            transfers: state.transfers,
            unrecoverable_names: unrecoverable,
            reverse_claims: state.reverse_claims,
        };
        Subgraph {
            ordered,
            by_hash,
            by_name,
            reverse_history: Arc::new(state.reverse_history),
            stats,
            unattributed_addr_changes: state.unattributed_addr_changes,
        }
    }

    /// Pages through all domains in label-hash order.
    pub fn domains(&self, request: PageRequest) -> Page<DomainRecord> {
        query::page_slice(&self.ordered, request)
    }

    /// Looks up one domain by label hash.
    pub fn domain(&self, label_hash: LabelHash) -> Option<&DomainRecord> {
        self.by_hash.get(&label_hash).map(|&i| &self.ordered[i])
    }

    /// Looks up one domain by (recovered) name.
    pub fn domain_by_name(&self, name: &EnsName) -> Option<&DomainRecord> {
        self.by_name.get(&name.to_full()).map(|&i| &self.ordered[i])
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SubgraphStats {
        self.stats
    }

    /// The primary-name (reverse) claim history of every address.
    pub fn reverse_history(&self) -> &HashMap<Address, Vec<(Timestamp, String)>> {
        &self.reverse_history
    }

    /// An owned, shared snapshot of the reverse-claim history. Cloning the
    /// returned handle is a reference-count bump, not a deep copy — this is
    /// what dataset assembly stores.
    pub fn reverse_history_snapshot(&self) -> Arc<HashMap<Address, Vec<(Timestamp, String)>>> {
        Arc::clone(&self.reverse_history)
    }

    /// The primary name `addr` had claimed as of time `t`.
    pub fn primary_name_at(&self, addr: Address, t: Timestamp) -> Option<&str> {
        self.reverse_history
            .get(&addr)?
            .iter()
            .rfind(|(at, _)| *at <= t)
            .map(|(_, name)| name.as_str())
    }

    /// `AddrChanged` events that could not be tied to any known domain
    /// (hash-only legacy names).
    pub fn unattributed_addr_changes(&self) -> usize {
        self.unattributed_addr_changes
    }

    /// Iterates over every indexed domain (test/ground-truth convenience;
    /// crawlers should use [`Subgraph::domains`]).
    pub fn iter(&self) -> impl Iterator<Item = &DomainRecord> {
        self.ordered.iter()
    }
}

/// The subgraph as a generic paged source: items are [`DomainRecord`]s in
/// label-hash order, the total is known up front (so crawls can be sharded
/// by page range), and the server-side `first` cap of [`MAX_PAGE_SIZE`]
/// still applies to every fetch.
impl PagedSource for Subgraph {
    type Item = DomainRecord;

    fn source_name(&self) -> &'static str {
        "subgraph"
    }

    fn total_hint(&self) -> Option<usize> {
        Some(self.ordered.len())
    }

    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<DomainRecord>, PageError> {
        if limit == 0 {
            // A zero-limit request can never make progress; surface it as a
            // typed malformed-request fault instead of looping forever.
            return Err(PageError::malformed(
                self.source_name(),
                offset,
                "zero-limit page request",
            ));
        }
        let page = self.domains(PageRequest {
            first: limit,
            skip: offset,
        });
        let has_more = offset + page.items.len() < page.total;
        Ok(PagedBatch {
            items: page.items,
            has_more,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_registry::{commit_and_register, EnsSystem};
    use ens_types::{Address, Duration, Label, Timestamp, Wei};
    use sim_chain::Chain;

    const PRICE: u64 = 200_000;

    fn world() -> (EnsSystem, Chain) {
        let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
        let ens = EnsSystem::new();
        for who in ["alice", "bob", "carol"] {
            chain.mint(Address::derive(who.as_bytes()), Wei::from_eth(10_000));
        }
        (ens, chain)
    }

    fn register(
        ens: &mut EnsSystem,
        chain: &mut Chain,
        label: &str,
        who: &str,
        years: u64,
        secret: u64,
    ) {
        commit_and_register(
            ens,
            chain,
            &Label::parse(label).unwrap(),
            Address::derive(who.as_bytes()),
            secret,
            Duration::from_years(years),
            PRICE,
            Some(Address::derive(who.as_bytes())),
        )
        .unwrap();
    }

    #[test]
    fn indexes_registration_lifecycle() {
        let (mut ens, mut chain) = world();
        register(&mut ens, &mut chain, "gold", "alice", 1, 1);
        ens.renew(
            &mut chain,
            &Label::parse("gold").unwrap(),
            Address::derive(b"alice"),
            Duration::from_years(1),
            PRICE,
        )
        .unwrap();
        ens.transfer(
            &chain,
            &Label::parse("gold").unwrap(),
            Address::derive(b"alice"),
            Address::derive(b"bob"),
        )
        .unwrap();

        let sg = Subgraph::index(ens.events(), SubgraphConfig::lossless());
        let record = sg
            .domain_by_name(&EnsName::parse("gold.eth").unwrap())
            .unwrap();
        assert_eq!(record.registrations.len(), 1);
        assert_eq!(record.renewals.len(), 1);
        assert_eq!(record.transfers.len(), 1);
        assert_eq!(record.addr_changes.len(), 1);
        assert!(!record.was_reregistered());
        // Renewal extends the effective expiry by a year.
        assert_eq!(
            record.current_expiry().unwrap(),
            record.registrations[0].expires + Duration::from_years(1)
        );
    }

    #[test]
    fn reregistration_is_visible_as_two_registrations() {
        let (mut ens, mut chain) = world();
        register(&mut ens, &mut chain, "gold", "alice", 1, 1);
        chain.advance(Duration::from_years(2));
        register(&mut ens, &mut chain, "gold", "bob", 1, 2);

        let sg = Subgraph::index(ens.events(), SubgraphConfig::lossless());
        let record = sg
            .domain_by_name(&EnsName::parse("gold.eth").unwrap())
            .unwrap();
        assert!(record.was_reregistered());
        assert_eq!(record.registrations[0].owner, Address::derive(b"alice"));
        assert_eq!(record.registrations[1].owner, Address::derive(b"bob"));
        // Per-registration expiry resolution.
        assert_eq!(
            record.expiry_of_registration(0).unwrap(),
            record.registrations[0].expires
        );
    }

    #[test]
    fn pagination_is_stable_and_complete() {
        let (mut ens, mut chain) = world();
        for i in 0..25 {
            register(&mut ens, &mut chain, &format!("name{i:03}"), "alice", 1, i);
        }
        let sg = Subgraph::index(ens.events(), SubgraphConfig::lossless());

        let mut request = PageRequest::first(10);
        let mut collected = Vec::new();
        loop {
            let page = sg.domains(request);
            assert_eq!(page.total, 25);
            collected.extend(page.items.iter().map(|r| r.label_hash));
            if !page.has_more(request) {
                break;
            }
            request = request.next();
        }
        assert_eq!(collected.len(), 25);
        let mut sorted = collected.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 25, "no duplicates or gaps across pages");
    }

    #[test]
    fn page_size_is_capped() {
        let request = PageRequest::first(5000);
        assert_eq!(request.effective_first(), MAX_PAGE_SIZE);
    }

    #[test]
    fn name_loss_hides_names_but_keeps_history() {
        let (mut ens, mut chain) = world();
        for i in 0..300 {
            register(&mut ens, &mut chain, &format!("name{i:03}"), "alice", 1, i);
        }
        // A high loss rate so the effect is visible at this scale.
        let sg = Subgraph::index(
            ens.events(),
            SubgraphConfig {
                name_loss_rate: 0.10,
                seed: 7,
            },
        );
        let stats = sg.stats();
        assert_eq!(stats.domains, 300);
        assert!(
            stats.unrecoverable_names > 10 && stats.unrecoverable_names < 80,
            "loss ≈ 10%, got {}",
            stats.unrecoverable_names
        );
        // Histories survive even when the name doesn't.
        let lost = sg.iter().find(|r| r.name.is_none()).unwrap();
        assert_eq!(lost.registrations.len(), 1);
        assert!((stats.recovery_rate() - 0.9).abs() < 0.1);
    }

    #[test]
    fn legacy_imports_index_without_names() {
        let (mut ens, chain) = world();
        ens.import_legacy(
            &chain,
            &Label::parse("oldname").unwrap(),
            Address::derive(b"alice"),
            Timestamp::from_ymd(2021, 5, 1),
            Some(Address::derive(b"alice")),
        )
        .unwrap();
        let sg = Subgraph::index(ens.events(), SubgraphConfig::lossless());
        let record = sg.domain(Label::parse("oldname").unwrap().hash()).unwrap();
        assert!(record.name.is_none());
        assert!(record.registrations[0].legacy);
        // The AddrChanged for the unknown node cannot be attributed.
        assert_eq!(record.addr_changes.len(), 0);
        assert_eq!(sg.unattributed_addr_changes(), 1);
    }

    #[test]
    fn incremental_sync_matches_one_shot_indexing() {
        let (mut ens, mut chain) = world();
        for i in 0..40 {
            register(&mut ens, &mut chain, &format!("inc{i:02}"), "alice", 1, i);
        }
        ens.renew(
            &mut chain,
            &ens_types::Label::parse("inc00").unwrap(),
            Address::derive(b"alice"),
            Duration::from_years(1),
            PRICE,
        )
        .unwrap();
        let events = ens.events();

        // Feed in three chunks with an overlapping boundary: the cursor
        // makes re-delivery idempotent.
        let mut indexer = SubgraphIndexer::new();
        let n = events.len();
        assert_eq!(indexer.sync(&events[..n / 3]), n / 3);
        let applied = indexer.sync(&events[n / 4..2 * n / 3]);
        assert!(applied < 2 * n / 3 - n / 4, "overlap must be skipped");
        indexer.sync(&events[2 * n / 3..]);
        assert_eq!(indexer.events_indexed(), n as u64);

        let incremental = indexer.snapshot(SubgraphConfig::lossless());
        let one_shot = Subgraph::index(events, SubgraphConfig::lossless());
        assert_eq!(incremental.stats(), one_shot.stats());
        let a: Vec<_> = incremental.iter().map(|d| d.label_hash).collect();
        let b: Vec<_> = one_shot.iter().map(|d| d.label_hash).collect();
        assert_eq!(a, b);
        // Per-domain content matches too.
        for d in one_shot.iter() {
            assert_eq!(incremental.domain(d.label_hash), Some(d));
        }
    }

    #[test]
    fn subdomains_are_counted_and_attached() {
        let (mut ens, mut chain) = world();
        register(&mut ens, &mut chain, "gold", "alice", 1, 1);
        ens.create_subdomain(
            &chain,
            &Label::parse("gold").unwrap(),
            Address::derive(b"alice"),
            &Label::parse_any("pay").unwrap(),
            Address::derive(b"bob"),
            None,
        )
        .unwrap();
        let sg = Subgraph::index(ens.events(), SubgraphConfig::lossless());
        assert_eq!(sg.stats().subdomains, 1);
        let record = sg
            .domain_by_name(&EnsName::parse("gold.eth").unwrap())
            .unwrap();
        assert_eq!(record.subdomains.len(), 1);
        assert_eq!(record.subdomains[0].label, "pay");
    }
}
