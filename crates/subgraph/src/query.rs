//! The paged, GraphQL-flavoured query surface of the subgraph.

use serde::{Deserialize, Serialize};

/// Maximum `first` the endpoint accepts per page, like The Graph's limit.
pub const MAX_PAGE_SIZE: usize = 1000;

/// A `{ first, skip }` page request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRequest {
    /// Maximum items to return (silently capped at [`MAX_PAGE_SIZE`]).
    pub first: usize,
    /// Items to skip from the start of the (stable) ordering.
    pub skip: usize,
}

impl PageRequest {
    /// First page of `first` items.
    pub fn first(first: usize) -> PageRequest {
        PageRequest { first, skip: 0 }
    }

    /// The request for the page after this one.
    pub fn next(self) -> PageRequest {
        PageRequest {
            first: self.first,
            skip: self.skip + self.effective_first(),
        }
    }

    /// `first` after applying the server-side cap.
    pub fn effective_first(self) -> usize {
        self.first.min(MAX_PAGE_SIZE)
    }
}

/// One page of results.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Page<T> {
    /// The items on this page, in the endpoint's stable order.
    pub items: Vec<T>,
    /// Total number of items across all pages.
    pub total: usize,
}

impl<T> Page<T> {
    /// True if a subsequent request would return more items.
    pub fn has_more(&self, request: PageRequest) -> bool {
        request.skip + self.items.len() < self.total
    }
}

/// Pages a slice according to `request`, cloning the selected window.
pub(crate) fn page_slice<T: Clone>(items: &[T], request: PageRequest) -> Page<T> {
    let start = request.skip.min(items.len());
    let end = (start + request.effective_first()).min(items.len());
    Page {
        items: items[start..end].to_vec(),
        total: items.len(),
    }
}
