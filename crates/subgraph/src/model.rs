//! The subgraph's materialized view of ENS history.

use ens_types::{Address, BlockNumber, EnsName, LabelHash, NameHash, Timestamp, TxHash, Wei};
use serde::{Deserialize, Serialize};

/// One registration lifecycle event for a domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistrationEntry {
    /// The registrant.
    pub owner: Address,
    /// When this registration was made.
    pub registered_at: Timestamp,
    /// Expiry set at registration time (before any renewals).
    pub expires: Timestamp,
    /// Base rent paid.
    pub base_cost: Wei,
    /// Premium paid (non-zero ⇒ registered inside the Dutch-auction window).
    pub premium: Wei,
    /// Chain coordinates.
    pub block: BlockNumber,
    /// Payment transaction (absent for legacy/auction-era imports).
    pub tx: Option<TxHash>,
    /// True for auction-era registrations imported at the 2020 migration.
    pub legacy: bool,
}

/// A renewal event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenewalEntry {
    /// When the renewal happened.
    pub at: Timestamp,
    /// The expiry after the renewal.
    pub new_expiry: Timestamp,
    /// Rent paid.
    pub cost: Wei,
    /// Chain coordinates.
    pub block: BlockNumber,
    /// Payment transaction.
    pub tx: Option<TxHash>,
}

/// An ERC-721 transfer of the registration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferEntry {
    /// When the transfer happened.
    pub at: Timestamp,
    /// Previous registrant.
    pub from: Address,
    /// New registrant.
    pub to: Address,
    /// Chain coordinates.
    pub block: BlockNumber,
}

/// A resolver `addr` record change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrEntry {
    /// When the record was written.
    pub at: Timestamp,
    /// The new resolution target.
    pub addr: Address,
}

/// A subdomain created under a domain.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubdomainEntry {
    /// The subdomain's namehash.
    pub node: NameHash,
    /// Subdomain label (always known — `SubnodeCreated` carries it).
    pub label: String,
    /// Owner of the subdomain node.
    pub owner: Address,
    /// Creation time.
    pub at: Timestamp,
}

/// Everything the subgraph knows about one second-level `.eth` domain.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainRecord {
    /// The domain's label hash — always known (it *is* the on-chain key).
    pub label_hash: LabelHash,
    /// The human-readable name, when recovery succeeded. `None` models the
    /// 34K names (0.1%) the paper could not recover through the API.
    pub name: Option<EnsName>,
    /// Registrations in chain order (≥ 2 entries ⇒ the domain changed hands
    /// through expiry at least once — a dropcatch candidate).
    pub registrations: Vec<RegistrationEntry>,
    /// Renewals in chain order.
    pub renewals: Vec<RenewalEntry>,
    /// NFT transfers in chain order.
    pub transfers: Vec<TransferEntry>,
    /// Resolver `addr` history for the domain's own node.
    pub addr_changes: Vec<AddrEntry>,
    /// Subdomains created under this name.
    pub subdomains: Vec<SubdomainEntry>,
}

impl DomainRecord {
    /// The expiry of the most recent registration, after applying renewals.
    ///
    /// Renewal entries carry the absolute post-renewal expiry, so the
    /// current expiry is the max over the last registration and every later
    /// renewal.
    pub fn current_expiry(&self) -> Option<Timestamp> {
        let last_reg = self.registrations.last()?;
        let mut expiry = last_reg.expires;
        for renewal in &self.renewals {
            if renewal.at >= last_reg.registered_at && renewal.new_expiry > expiry {
                expiry = renewal.new_expiry;
            }
        }
        Some(expiry)
    }

    /// The expiry that applied to registration `idx` (its own term plus any
    /// renewals made during that term, before the next registration).
    pub fn expiry_of_registration(&self, idx: usize) -> Option<Timestamp> {
        let reg = self.registrations.get(idx)?;
        let next_start = self
            .registrations
            .get(idx + 1)
            .map(|r| r.registered_at)
            .unwrap_or(Timestamp(u64::MAX));
        let mut expiry = reg.expires;
        for renewal in &self.renewals {
            if renewal.at >= reg.registered_at
                && renewal.at < next_start
                && renewal.new_expiry > expiry
            {
                expiry = renewal.new_expiry;
            }
        }
        Some(expiry)
    }

    /// True if the domain was ever held by two distinct registrants across
    /// an expiry boundary (re-registered / dropcaught). Transfers alone do
    /// not count.
    pub fn was_reregistered(&self) -> bool {
        self.registrations.len() >= 2
    }
}

/// Aggregate counts the subgraph can report in one call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubgraphStats {
    /// Number of second-level domains indexed.
    pub domains: usize,
    /// Number of subdomains indexed.
    pub subdomains: usize,
    /// Total registration events.
    pub registrations: usize,
    /// Total renewal events.
    pub renewals: usize,
    /// Total transfer events.
    pub transfers: usize,
    /// Domains whose readable name could not be recovered.
    pub unrecoverable_names: usize,
    /// Primary-name (reverse) claims observed.
    pub reverse_claims: usize,
}

impl SubgraphStats {
    /// Fraction of domains with recovered names (the paper reports 99.9%).
    pub fn recovery_rate(&self) -> f64 {
        if self.domains == 0 {
            return 1.0;
        }
        1.0 - self.unrecoverable_names as f64 / self.domains as f64
    }
}
