//! Label generation with explicit lexical classes.
//!
//! Each generated name carries the class it was drawn from and an intrinsic
//! *desirability* score. Desirability drives dropcatcher interest in the
//! behaviour model — short dictionary words and brands are wanted, long
//! hyphen/underscore gibberish is not — which is how the Table 1 contrasts
//! (re-registered domains are shorter, wordier, less digit-ridden) *emerge*
//! from the simulation instead of being baked into the analysis.
//!
//! One modelling note: the paper's Table 1 reports `contains_digit` at 2.3%
//! for re-registered vs 27.1% for control while `is_numeric` is ≈13.5% for
//! both — impossible if `is_numeric ⊆ contains_digit`. We therefore read the
//! paper's `contains_digit` as "contains a digit but is not purely numeric"
//! (mixed alphanumerics) and model classes accordingly; `ens-dropcatch`
//! computes the feature the same way.

use std::collections::HashSet;

use ens_lexicon::{ADULT, BRANDS, CRYPTO_SUFFIXES, DICTIONARY, FIRST_NAMES};
use ens_types::Label;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dist::weighted_choice;

/// The lexical class a label was generated from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NameClass {
    /// An exact dictionary word (`gold`).
    DictionaryWord,
    /// A brand name, possibly with a suffix (`puma`, `teslafan`).
    Brand,
    /// Pure digits, 3–4 of them (`007`, `8888`) — the "999 club" style.
    NumericShort,
    /// Pure digits, 5–8 of them.
    NumericLong,
    /// Two dictionary words or word+crypto suffix (`goldwhale`, `artdao`).
    Compound,
    /// Contains an adult-content word.
    Adult,
    /// A person-style name, sometimes with digits (`maria`, `john1987`).
    Person,
    /// Pronounceable gibberish (`vakorem`).
    Gibberish,
    /// Mixed letters and digits (`x9k2trade`).
    AlphaNumeric,
    /// Two tokens joined by a hyphen.
    Hyphenated,
    /// Two tokens joined by an underscore.
    Underscored,
}

impl NameClass {
    /// All classes, in the order used by [`ClassMix`].
    pub const ALL: [NameClass; 11] = [
        NameClass::DictionaryWord,
        NameClass::Brand,
        NameClass::NumericShort,
        NameClass::NumericLong,
        NameClass::Compound,
        NameClass::Adult,
        NameClass::Person,
        NameClass::Gibberish,
        NameClass::AlphaNumeric,
        NameClass::Hyphenated,
        NameClass::Underscored,
    ];

    /// Base desirability of the class in [0, 1] — how much dropcatchers
    /// want names of this shape, before the length adjustment.
    pub fn base_desirability(self) -> f64 {
        match self {
            NameClass::DictionaryWord => 0.92,
            NameClass::Brand => 0.85,
            NameClass::NumericShort => 0.70,
            NameClass::Compound => 0.45,
            NameClass::Adult => 0.45,
            NameClass::Person => 0.35,
            NameClass::NumericLong => 0.18,
            NameClass::Gibberish => 0.12,
            NameClass::AlphaNumeric => 0.06,
            NameClass::Hyphenated => 0.06,
            NameClass::Underscored => 0.03,
        }
    }
}

/// Population fractions per class (same order as [`NameClass::ALL`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassMix(pub [f64; 11]);

impl Default for ClassMix {
    /// Mix tuned so the *expired-name population* matches the control-group
    /// column of the paper's Table 1 (≈27% mixed alphanumeric+digit
    /// carriers, ≈13.5% pure numeric, ≈37% containing dictionary words,
    /// ≈6% hyphenated, ≈2% underscored, ≈0.8% adult).
    fn default() -> Self {
        ClassMix([
            0.040, // DictionaryWord
            0.006, // Brand
            0.040, // NumericShort
            0.095, // NumericLong
            0.280, // Compound
            0.008, // Adult
            0.090, // Person (half get digits → feeds mixed-alnum)
            0.150, // Gibberish
            0.220, // AlphaNumeric
            0.055, // Hyphenated
            0.016, // Underscored
        ])
    }
}

/// A generated label with its ground-truth class and desirability.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NameSpec {
    /// The validated label.
    pub label: Label,
    /// The class it was generated from.
    pub class: NameClass,
    /// Intrinsic desirability in [0, 1], length-adjusted.
    pub desirability: f64,
}

/// Deduplicating label generator.
#[derive(Debug)]
pub struct NameGenerator {
    mix: ClassMix,
    used: HashSet<String>,
    salt: u64,
}

impl NameGenerator {
    /// Creates a generator with the given class mix.
    pub fn new(mix: ClassMix) -> NameGenerator {
        NameGenerator {
            mix,
            used: HashSet::new(),
            salt: 0,
        }
    }

    /// Generates the next unique label.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R) -> NameSpec {
        let mut class = NameClass::ALL[weighted_choice(rng, &self.mix.0)];
        for attempt in 0..64 {
            // Finite-vocabulary classes (exact dictionary words, brands)
            // exhaust at scale; degrade to Compound, which still *contains*
            // the word — matching how real registrants improvise once the
            // plain word is taken.
            if attempt == 8 && matches!(class, NameClass::DictionaryWord | NameClass::Brand) {
                class = NameClass::Compound;
            }
            let candidate = self.raw(rng, class, attempt);
            if candidate.len() < 3 {
                continue;
            }
            if self.used.insert(candidate.clone()) {
                let label = Label::parse(&candidate).expect("generator emits valid labels");
                let desirability = desirability_of(class, label.len());
                return NameSpec {
                    label,
                    class,
                    desirability,
                };
            }
        }
        // Last resort: a salted gibberish label, guaranteed fresh.
        self.salt += 1;
        let candidate = format!("{}{}", gibberish(rng, 8), self.salt);
        self.used.insert(candidate.clone());
        NameSpec {
            label: Label::parse(&candidate).expect("valid"),
            class: NameClass::AlphaNumeric,
            desirability: desirability_of(NameClass::AlphaNumeric, candidate.len()),
        }
    }

    /// Number of labels generated so far.
    pub fn generated(&self) -> usize {
        self.used.len()
    }

    fn raw<R: Rng + ?Sized>(&self, rng: &mut R, class: NameClass, attempt: usize) -> String {
        let pick = |rng: &mut R, list: &[&str]| list[rng.gen_range(0..list.len())].to_string();
        match class {
            NameClass::DictionaryWord => pick(rng, DICTIONARY),
            NameClass::Brand => {
                let brand = pick(rng, BRANDS);
                if attempt == 0 {
                    brand
                } else {
                    format!("{brand}{}", pick(rng, CRYPTO_SUFFIXES))
                }
            }
            NameClass::NumericShort => {
                let len = rng.gen_range(3..=4);
                digits(rng, len)
            }
            NameClass::NumericLong => {
                let len = rng.gen_range(5..=8);
                digits(rng, len)
            }
            NameClass::Compound => {
                let a = pick(rng, DICTIONARY);
                let b = if rng.gen_bool(0.4) {
                    pick(rng, CRYPTO_SUFFIXES)
                } else {
                    pick(rng, DICTIONARY)
                };
                format!("{a}{b}")
            }
            NameClass::Adult => {
                let word = pick(rng, ADULT);
                if rng.gen_bool(0.5) {
                    word
                } else {
                    format!("{word}{}", pick(rng, DICTIONARY))
                }
            }
            NameClass::Person => {
                let name = pick(rng, FIRST_NAMES);
                if rng.gen_bool(0.5) {
                    // Person names with digits feed the mixed-alnum feature.
                    format!("{name}{}", rng.gen_range(1940..=2023))
                } else if rng.gen_bool(0.3) {
                    format!("{name}{}", pick(rng, FIRST_NAMES))
                } else {
                    name
                }
            }
            NameClass::Gibberish => {
                let len = rng.gen_range(5..=12);
                gibberish(rng, len)
            }
            NameClass::AlphaNumeric => {
                let base_len = rng.gen_range(4..=9);
                let base = gibberish(rng, base_len);
                let num_len = rng.gen_range(1..=4);
                let num = digits(rng, num_len);
                if rng.gen_bool(0.5) {
                    format!("{base}{num}")
                } else {
                    format!("{num}{base}")
                }
            }
            NameClass::Hyphenated => {
                format!("{}-{}", pick(rng, DICTIONARY), pick(rng, DICTIONARY))
            }
            NameClass::Underscored => {
                format!("{}_{}", pick(rng, DICTIONARY), pick(rng, DICTIONARY))
            }
        }
    }
}

/// Length-adjusted desirability: shorter names of the same class are worth
/// more (the "3 Letters Club" effect the paper cites).
pub fn desirability_of(class: NameClass, len: usize) -> f64 {
    let base = class.base_desirability();
    let length_factor = (1.35 - 0.06 * len.saturating_sub(3) as f64).clamp(0.45, 1.35);
    (base * length_factor).clamp(0.0, 1.0)
}

fn digits<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    (0..len)
        .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
        .collect()
}

/// Pronounceable consonant-vowel gibberish of roughly the requested length.
fn gibberish<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwxz";
    const VOWELS: &[u8] = b"aeiou";
    let mut out = String::with_capacity(len);
    while out.len() < len {
        out.push(char::from(CONSONANTS[rng.gen_range(0..CONSONANTS.len())]));
        if out.len() < len {
            out.push(char::from(VOWELS[rng.gen_range(0..VOWELS.len())]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn generates_unique_valid_labels_at_scale() {
        let mut g = NameGenerator::new(ClassMix::default());
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..20_000 {
            let spec = g.generate(&mut r);
            assert!(spec.label.len() >= 3);
            assert!(
                seen.insert(spec.label.as_str().to_string()),
                "duplicate label"
            );
        }
        assert_eq!(g.generated(), 20_000);
    }

    #[test]
    fn classes_produce_their_lexical_signature() {
        let mut g = NameGenerator::new(ClassMix::default());
        let mut r = rng();
        for _ in 0..5_000 {
            let spec = g.generate(&mut r);
            let s = spec.label.as_str();
            match spec.class {
                NameClass::NumericShort | NameClass::NumericLong => {
                    assert!(ens_lexicon::is_numeric(s), "{s}");
                }
                NameClass::Hyphenated => assert!(s.contains('-'), "{s}"),
                NameClass::Underscored => assert!(s.contains('_'), "{s}"),
                NameClass::DictionaryWord => {
                    assert!(ens_lexicon::is_dictionary_word(s), "{s}")
                }
                NameClass::Adult => assert!(ens_lexicon::contains_adult_word(s), "{s}"),
                NameClass::Brand => assert!(ens_lexicon::contains_brand_name(s), "{s}"),
                _ => {}
            }
        }
    }

    #[test]
    fn desirability_ranks_classes_as_documented() {
        let d = |c: NameClass| desirability_of(c, 6);
        assert!(d(NameClass::DictionaryWord) > d(NameClass::Compound));
        assert!(d(NameClass::Compound) > d(NameClass::AlphaNumeric));
        assert!(d(NameClass::AlphaNumeric) > d(NameClass::Underscored));
        // Shorter is better within a class.
        assert!(
            desirability_of(NameClass::DictionaryWord, 4)
                > desirability_of(NameClass::DictionaryWord, 10)
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut g1 = NameGenerator::new(ClassMix::default());
        let mut g2 = NameGenerator::new(ClassMix::default());
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..500 {
            assert_eq!(
                g1.generate(&mut r1).label.as_str(),
                g2.generate(&mut r2).label.as_str()
            );
        }
    }

    #[test]
    fn population_mix_is_roughly_as_configured() {
        let mut g = NameGenerator::new(ClassMix::default());
        let mut r = rng();
        let n = 30_000;
        let mut numeric = 0usize;
        let mut mixed_digit = 0usize;
        let mut hyphen = 0usize;
        for _ in 0..n {
            let spec = g.generate(&mut r);
            let s = spec.label.as_str();
            if ens_lexicon::is_numeric(s) {
                numeric += 1;
            } else if ens_lexicon::contains_digit(s) {
                mixed_digit += 1;
            }
            if ens_lexicon::contains_hyphen(s) {
                hyphen += 1;
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!(
            (frac(numeric) - 0.135).abs() < 0.04,
            "numeric {}",
            frac(numeric)
        );
        assert!(
            (frac(mixed_digit) - 0.27).abs() < 0.07,
            "mixed digit {}",
            frac(mixed_digit)
        );
        assert!(
            (frac(hyphen) - 0.055).abs() < 0.03,
            "hyphen {}",
            frac(hyphen)
        );
    }
}
