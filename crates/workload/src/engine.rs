//! Phase B of world generation: *execution*.
//!
//! Replays a sorted [`Plan`](crate::plan::Plan) against real substrate
//! instances — the ledger, the ENS deployment, the marketplace — producing
//! the world the measurement pipeline will crawl. Execution is strict: any
//! protocol error aborts with context, so planner bugs surface as test
//! failures instead of silently skewing the data.

use ens_registry::{usd_to_wei, EnsSystem};
use ens_types::{Address, Duration, Label, UsdCents, Wei};

use etherscan_sim::LabelService;
use opensea_sim::OpenSea;
use price_oracle::PriceOracle;
use sim_chain::{Chain, TxKind};

use crate::config::WorldConfig;
use crate::plan::{Plan, PlannedAction, PlannedEvent};

/// An execution failure, annotated with the offending event.
#[derive(Debug)]
pub struct ExecError {
    /// Index of the event in the plan.
    pub index: usize,
    /// The event that failed.
    pub event: PlannedEvent,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event #{} at {:?} failed: {} ({:?})",
            self.index, self.event.at, self.message, self.event.action
        )
    }
}

impl std::error::Error for ExecError {}

/// The executed substrates.
pub struct Executed {
    /// The ledger with the full transaction log.
    pub chain: Chain,
    /// The ENS deployment with the full event log.
    pub ens: EnsSystem,
    /// The marketplace.
    pub opensea: OpenSea,
    /// Address labels (custodial pools, contracts).
    pub labels: LabelService,
    /// The price oracle used for all conversions.
    pub oracle: PriceOracle,
}

/// Executes a plan.
pub fn execute(cfg: &WorldConfig, plan: &Plan) -> Result<Executed, Box<ExecError>> {
    execute_events(cfg, &plan.events, &plan.custodial_pool, &plan.coinbase_pool)
}

/// [`execute`], consuming the plan: the replay is identical, but the
/// event vector — the bulk of a paper-scale plan's memory (~10M planned
/// events at 3.1M names) — is freed the moment the replay loop finishes,
/// so the caller builds the measurement views (subgraph, explorer,
/// dataset) without the whole plan still resident. Returns the executed
/// substrates together with the plan's ground truth.
pub fn execute_consuming(
    cfg: &WorldConfig,
    plan: Plan,
) -> Result<(Executed, Vec<crate::plan::NameTruth>), Box<ExecError>> {
    let Plan {
        events,
        truth,
        catchers: _,
        custodial_pool,
        coinbase_pool,
    } = plan;
    let executed = execute_events(cfg, &events, &custodial_pool, &coinbase_pool)?;
    drop(events);
    Ok((executed, truth))
}

fn execute_events(
    cfg: &WorldConfig,
    events: &[PlannedEvent],
    custodial_pool: &[ens_types::Address],
    coinbase_pool: &[ens_types::Address],
) -> Result<Executed, Box<ExecError>> {
    let oracle = PriceOracle::new();
    let mut chain = Chain::new(cfg.start - Duration::from_days(3));
    let mut ens = if cfg.behavior.auction_enabled {
        EnsSystem::new()
    } else {
        EnsSystem::new().with_premium_disabled()
    };
    let mut opensea = OpenSea::new();

    let mut labels = LabelService::new();
    for (i, a) in custodial_pool.iter().enumerate() {
        labels.add_custodial(*a, format!("Exchange {i}"));
    }
    for (i, a) in coinbase_pool.iter().enumerate() {
        labels.add_coinbase(*a, format!("Coinbase {i}"));
    }
    labels.add(etherscan_sim::AddressLabel {
        address: ens.controller_address(),
        name: "ENS: ETH Registrar Controller".into(),
        kind: etherscan_sim::LabelKind::Contract,
    });

    let mut exec = Executor {
        chain: &mut chain,
        ens: &mut ens,
        opensea: &mut opensea,
        oracle: &oracle,
    };
    for (index, event) in events.iter().enumerate() {
        exec.apply(event).map_err(|message| {
            Box::new(ExecError {
                index,
                event: event.clone(),
                message,
            })
        })?;
    }

    Ok(Executed {
        chain,
        ens,
        opensea,
        labels,
        oracle,
    })
}

struct Executor<'a> {
    chain: &'a mut Chain,
    ens: &'a mut EnsSystem,
    opensea: &'a mut OpenSea,
    oracle: &'a PriceOracle,
}

impl Executor<'_> {
    fn apply(&mut self, event: &PlannedEvent) -> Result<(), String> {
        if event.at > self.chain.now() {
            self.chain
                .advance_to(event.at)
                .map_err(|e| format!("clock: {e}"))?;
        }
        let now = self.chain.now();
        let price = self.oracle.cents_per_eth(now);

        match &event.action {
            PlannedAction::ImportLegacy {
                label,
                owner,
                expiry,
                publish_label,
            } => self
                .ens
                .import_legacy_with(
                    self.chain,
                    label,
                    *owner,
                    *expiry,
                    Some(*owner),
                    *publish_label,
                )
                .map_err(|e| e.to_string()),

            PlannedAction::Commit {
                label,
                owner,
                secret,
            } => {
                let c = EnsSystem::make_commitment(label, *owner, *secret);
                self.ens.commit(self.chain, c);
                Ok(())
            }

            PlannedAction::Register {
                label,
                owner,
                secret,
                years,
            } => {
                let duration = Duration::from_years(*years);
                let (rent, premium) = self.ens.price_usd(label, duration, now);
                let cost = usd_to_wei(rent + premium, price);
                self.ensure_funds(*owner, cost);
                self.ens
                    .register(
                        self.chain,
                        label,
                        *owner,
                        *secret,
                        duration,
                        price,
                        Some(*owner),
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }

            PlannedAction::Renew {
                label,
                payer,
                years,
            } => {
                let duration = Duration::from_years(*years);
                let (rent, _) = self.ens.price_usd(label, duration, now);
                self.ensure_funds(*payer, usd_to_wei(rent, price));
                self.ens
                    .renew(self.chain, label, *payer, duration, price)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }

            PlannedAction::Send { from, to, usd } => {
                let wei = self.usd_to_wei_now(*usd, price);
                self.ensure_funds(*from, wei);
                self.chain
                    .transfer(*from, *to, wei, TxKind::Transfer)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }

            PlannedAction::Transfer { label, from, to } => self
                .ens
                .transfer(self.chain, label, *from, *to)
                .map_err(|e| e.to_string()),

            PlannedAction::List { label, seller, usd } => {
                self.opensea
                    .list(label.hash(), *seller, usd_cents(*usd), now);
                Ok(())
            }

            PlannedAction::Sale {
                label,
                seller,
                buyer,
                usd,
            } => {
                let wei = self.usd_to_wei_now(*usd, price);
                self.ensure_funds(*buyer, wei);
                self.chain
                    .transfer(*buyer, *seller, wei, TxKind::Transfer)
                    .map_err(|e| e.to_string())?;
                self.ens
                    .transfer(self.chain, label, *seller, *buyer)
                    .map_err(|e| format!("sale transfer: {e}"))?;
                // The buyer points the name at their own wallet.
                self.ens
                    .set_addr(self.chain, label, *buyer, *buyer)
                    .map_err(|e| format!("sale set_addr: {e}"))?;
                self.opensea
                    .record_sale(label.hash(), *seller, *buyer, usd_cents(*usd), now);
                Ok(())
            }

            PlannedAction::SetReverse { addr, label } => {
                let name = ens_types::EnsName::from_label(label.clone());
                self.ens.set_primary_name(self.chain, *addr, &name);
                Ok(())
            }

            PlannedAction::Subdomain {
                label,
                caller,
                sub_label,
                sub_owner,
            } => {
                let sub = Label::parse_any(sub_label).map_err(|e| e.to_string())?;
                self.ens
                    .create_subdomain(
                        self.chain,
                        label,
                        *caller,
                        &sub,
                        *sub_owner,
                        Some(*sub_owner),
                    )
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
        }
    }

    /// Converts a planned USD amount to wei at the current day's close.
    fn usd_to_wei_now(&self, usd: f64, cents_per_eth: u64) -> Wei {
        let cents = UsdCents((usd * 100.0).round().max(1.0) as u128);
        usd_to_wei(cents, cents_per_eth)
    }

    /// Tops an account up (with a 0.1 ETH buffer) so `need` is spendable.
    /// Mints are recorded as transactions from the zero address, so actors
    /// typically show a single funding entry in their history.
    fn ensure_funds(&mut self, who: Address, need: Wei) {
        let balance = self.chain.balance(who);
        if balance < need {
            let shortfall = need - balance + Wei::from_milli_eth(100);
            self.chain.mint(who, shortfall);
        }
    }
}

fn usd_cents(usd: f64) -> UsdCents {
    UsdCents((usd * 100.0).round().max(0.0) as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlannedEvent};
    use ens_types::Timestamp;

    fn empty_plan(events: Vec<PlannedEvent>) -> Plan {
        Plan {
            events,
            truth: Vec::new(),
            catchers: Vec::new(),
            custodial_pool: vec![Address::derive(b"exchange-0")],
            coinbase_pool: vec![Address::derive(b"coinbase-0")],
        }
    }

    fn cfg() -> WorldConfig {
        WorldConfig::small()
    }

    fn ev(at: Timestamp, seq: u64, action: PlannedAction) -> PlannedEvent {
        PlannedEvent { at, seq, action }
    }

    fn t(days: u64) -> Timestamp {
        Timestamp::from_ymd(2021, 1, 1) + Duration::from_days(days)
    }

    #[test]
    fn executes_a_minimal_consistent_plan() {
        let owner = Address::derive(b"owner");
        let sender = Address::derive(b"sender");
        let label = Label::parse("enginetest").unwrap();
        let plan = empty_plan(vec![
            ev(
                t(0),
                0,
                PlannedAction::Commit {
                    label: label.clone(),
                    owner,
                    secret: 1,
                },
            ),
            ev(
                t(1),
                1,
                PlannedAction::Register {
                    label: label.clone(),
                    owner,
                    secret: 1,
                    years: 1,
                },
            ),
            ev(
                t(2),
                2,
                PlannedAction::Send {
                    from: sender,
                    to: owner,
                    usd: 150.0,
                },
            ),
            ev(
                t(3),
                3,
                PlannedAction::SetReverse {
                    addr: owner,
                    label: label.clone(),
                },
            ),
            ev(
                t(4),
                4,
                PlannedAction::Renew {
                    label: label.clone(),
                    payer: owner,
                    years: 1,
                },
            ),
        ]);
        let executed = execute(&cfg(), &plan).expect("consistent plan executes");
        let name = ens_types::EnsName::from_label(label);
        assert_eq!(executed.ens.resolve(&name), Some(owner));
        assert_eq!(executed.ens.primary_name(owner), Some(&name));
        assert!(executed.ens.forward_and_back_match(&name));
        // Lazy funding minted for the owner, the sender, and the payment
        // landed: value conservation still holds.
        assert_eq!(
            executed.chain.total_balance(),
            executed.chain.total_minted()
        );
        assert!(executed.chain.balance(owner) > Wei::ZERO);
        // Custodial pools got labelled.
        assert!(executed.labels.is_custodial(Address::derive(b"exchange-0")));
    }

    #[test]
    fn inconsistent_plans_fail_loudly_with_context() {
        let owner = Address::derive(b"owner");
        let label = Label::parse("enginetest").unwrap();
        // Register without a commitment: a planner bug, not data.
        let plan = empty_plan(vec![ev(
            t(0),
            0,
            PlannedAction::Register {
                label,
                owner,
                secret: 9,
                years: 1,
            },
        )]);
        let Err(err) = execute(&cfg(), &plan) else {
            panic!("inconsistent plan must fail");
        };
        assert_eq!(err.index, 0);
        assert!(err.to_string().contains("commitment"), "{err}");
    }

    #[test]
    fn unsorted_plans_are_rejected_by_the_clock() {
        let owner = Address::derive(b"owner");
        let sender = Address::derive(b"sender");
        let plan = empty_plan(vec![
            ev(
                t(10),
                0,
                PlannedAction::Send {
                    from: sender,
                    to: owner,
                    usd: 5.0,
                },
            ),
            // Earlier than the previous event: the monotone clock refuses.
            ev(
                Timestamp(t(10).0 - 86_400),
                1,
                PlannedAction::Send {
                    from: sender,
                    to: owner,
                    usd: 5.0,
                },
            ),
        ]);
        // advance_to is only called for future times, so an out-of-order
        // event silently executes at the later clock -- verify it does NOT
        // error but also does not rewind time.
        let executed = execute(&cfg(), &plan).expect("executes at the current clock");
        let times: Vec<_> = executed
            .chain
            .transactions()
            .iter()
            .map(|tx| tx.timestamp)
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "chain time went backwards");
        }
    }
}
