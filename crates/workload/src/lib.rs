//! # workload
//!
//! The agent-based ENS ecosystem generator: given a [`WorldConfig`], it
//! plans every name's lifecycle (registration, renewals, expiry, possible
//! dropcatch, resale, sender traffic) and executes the plan against the
//! real substrates (`sim-chain`, `ens-registry`, `opensea-sim`), producing
//! a [`World`] whose *measured* statistics reproduce the shapes reported in
//! *Panning for gold.eth* (IMC 2024) — see DESIGN.md §5 for the calibration
//! anchors. Ground truth is kept alongside so integration tests can verify
//! the measurement pipeline, which itself only ever sees the public data
//! sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dist;
pub mod engine;
pub mod namegen;
pub mod plan;
pub mod world;

pub use config::{BehaviorParams, MarketParams, SenderParams, WorldConfig};
pub use namegen::{ClassMix, NameClass, NameGenerator, NameSpec};
pub use plan::{
    build_plan, MisdirectTruth, NameTruth, OwnerKind, PeriodTruth, Plan, PlannedAction,
    PlannedEvent,
};
pub use world::{World, WorldSummary};

/// Glob-import convenience.
pub mod prelude {
    pub use crate::config::WorldConfig;
    pub use crate::plan::{NameTruth, OwnerKind};
    pub use crate::world::{World, WorldSummary};
}
