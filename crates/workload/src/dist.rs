//! Small, dependency-free sampling helpers on top of a seeded RNG.
//!
//! `rand` (without `rand_distr`) only gives us uniform variates; the handful
//! of shapes the workload needs — normal, log-normal, Poisson, geometric,
//! Pareto, and weighted choice — are implemented here from first principles
//! so the whole simulation stays deterministic and dependency-light.

use rand::Rng;

/// A standard normal variate via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A log-normal variate with the given *median* and log-space σ.
///
/// Parameterizing by the median (= e^μ) is far more intuitive for monetary
/// calibration than μ itself: half the samples fall below it, and the mean
/// is `median * exp(σ²/2)`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * normal(rng)).exp()
}

/// A Poisson variate (Knuth's algorithm; fine for the small λ we use).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // λ is always small here; this cap is a safety net, not a code path.
        if k > 10_000 {
            return k;
        }
    }
}

/// A geometric variate: number of failures before the first success,
/// success probability `p` (so the mean is `(1-p)/p`).
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// A Pareto variate with scale `xmin` and shape `alpha` (inverse CDF).
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, xmin: f64, alpha: f64) -> f64 {
    debug_assert!(xmin > 0.0 && alpha > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    xmin / u.powf(1.0 / alpha)
}

/// An exponential variate with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
/// Panics on an empty or all-zero weight vector.
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Bernoulli draw.
pub fn chance<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// A cumulative-weight table for repeated weighted sampling over a large,
/// fixed population (e.g. picking which dropcatcher wins a name).
#[derive(Clone, Debug)]
pub struct CumulativeTable {
    cumulative: Vec<f64>,
}

impl CumulativeTable {
    /// Builds the table. Panics on empty or non-positive total weight.
    pub fn new(weights: &[f64]) -> CumulativeTable {
        assert!(!weights.is_empty(), "empty weight table");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            debug_assert!(w >= 0.0);
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must have positive sum");
        CumulativeTable { cumulative }
    }

    /// Samples an index in O(log n).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= target)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction rejects empty tables).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median_is_respected() {
        let mut r = rng();
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| log_normal(&mut r, 100.0, 1.5))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[5000];
        assert!((median / 100.0 - 1.0).abs() < 0.1, "median {median}");
        // Heavy tail: mean well above median.
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean > 2.0 * median);
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut r = rng();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| poisson(&mut r, 6.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.5).abs() < 0.15, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn geometric_mean_matches_formula() {
        let mut r = rng();
        let p = 0.4;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| geometric(&mut r, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - (1.0 - p) / p).abs() < 0.05, "mean {mean}");
        assert_eq!(geometric(&mut r, 1.0), 0);
    }

    #[test]
    fn pareto_respects_xmin_and_is_heavy_tailed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| pareto(&mut r, 1.0, 1.1)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 100.0, "expected a heavy tail, max {max}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_choice(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn cumulative_table_agrees_with_weighted_choice() {
        let mut r = rng();
        let weights = [5.0, 1.0, 4.0];
        let table = CumulativeTable::new(&weights);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[table.sample(&mut r)] += 1;
        }
        let f0 = counts[0] as f64 / 50_000.0;
        assert!((f0 - 0.5).abs() < 0.02, "f0 {f0}");
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 30.0)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }
}
