//! The assembled world: plan + execution + ground truth, with accessors
//! for the measurement-facing data sources.

use ens_subgraph::{Subgraph, SubgraphConfig};
use ens_types::Timestamp;
use etherscan_sim::{Etherscan, LabelService};
use opensea_sim::OpenSea;
use price_oracle::PriceOracle;
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;
use crate::engine::{execute_consuming, Executed};
use crate::plan::{build_plan, NameTruth, OwnerKind, Plan};

/// Headline counts of a built world.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldSummary {
    /// Names simulated.
    pub total_names: usize,
    /// Names whose first period ended in expiry inside the window.
    pub expired_names: usize,
    /// Names dropcaught at least once (ground truth).
    pub caught_names: usize,
    /// Subdomain creations.
    pub subdomains: usize,
    /// On-chain transactions.
    pub transactions: usize,
    /// ENS events emitted.
    pub ens_events: usize,
    /// Marketplace events.
    pub market_events: usize,
}

/// A fully built world.
pub struct World {
    /// The configuration it was built from.
    pub config: WorldConfig,
    /// The executed substrates.
    executed: Executed,
    /// Ground truth (the measurement pipeline never sees this).
    truth: Vec<NameTruth>,
}

impl WorldConfig {
    /// Plans and executes the world. Panics on planner/executor
    /// inconsistencies (they are bugs, not data). The plan's event vector
    /// is consumed and freed as soon as the replay finishes, keeping the
    /// paper-scale build's peak memory at one copy of the event stream.
    pub fn build(self) -> World {
        let plan: Plan = build_plan(&self);
        let (executed, truth) =
            execute_consuming(&self, plan).unwrap_or_else(|e| panic!("execution failed: {e}"));
        World {
            config: self,
            executed,
            truth,
        }
    }
}

impl World {
    /// The ledger.
    pub fn chain(&self) -> &sim_chain::Chain {
        &self.executed.chain
    }

    /// The ENS deployment.
    pub fn ens(&self) -> &ens_registry::EnsSystem {
        &self.executed.ens
    }

    /// The marketplace.
    pub fn opensea(&self) -> &OpenSea {
        &self.executed.opensea
    }

    /// The address label directory.
    pub fn labels(&self) -> &LabelService {
        &self.executed.labels
    }

    /// The price oracle used for all conversions.
    pub fn oracle(&self) -> &PriceOracle {
        &self.executed.oracle
    }

    /// End of the observation window.
    pub fn observation_end(&self) -> Timestamp {
        self.config.observation_end
    }

    /// Builds the subgraph view a crawler would query.
    pub fn subgraph(&self, config: SubgraphConfig) -> Subgraph {
        Subgraph::index(self.ens().events(), config)
    }

    /// Builds the transaction-explorer view a crawler would query.
    pub fn etherscan(&self) -> Etherscan {
        Etherscan::index(self.chain(), self.labels().clone())
    }

    /// Ground truth per name — for validation only.
    pub fn truth(&self) -> &[NameTruth] {
        &self.truth
    }

    /// Headline counts.
    pub fn dataset_summary(&self) -> WorldSummary {
        let expired = self.truth.iter().filter(|t| t.expired).count();
        let caught = self.truth.iter().filter(|t| t.catch_count > 0).count();
        WorldSummary {
            total_names: self.truth.len(),
            expired_names: expired,
            caught_names: caught,
            subdomains: self
                .ens()
                .events()
                .iter()
                .filter(|e| matches!(e.kind, ens_registry::EnsEventKind::SubnodeCreated { .. }))
                .count(),
            transactions: self.chain().transaction_count(),
            ens_events: self.ens().events().len(),
            market_events: self.opensea().event_count(),
        }
    }

    /// Ground-truth dropcatcher tenure count per address (for validating
    /// the concentration analysis).
    pub fn truth_catch_periods(&self) -> usize {
        self.truth
            .iter()
            .flat_map(|t| &t.periods)
            .filter(|p| p.kind == OwnerKind::Catcher)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use ens_types::EnsName;

    fn tiny() -> World {
        WorldConfig::small().with_names(400).with_seed(11).build()
    }

    #[test]
    fn builds_without_protocol_errors_and_conserves_value() {
        let world = tiny();
        let s = world.dataset_summary();
        assert_eq!(s.total_names, 400);
        assert!(s.transactions > 1_000);
        assert!(s.ens_events > 400);
        assert_eq!(
            world.chain().total_balance(),
            world.chain().total_minted(),
            "value conservation"
        );
    }

    #[test]
    fn reregistered_names_resolve_to_their_catcher() {
        let world = tiny();
        let caught = world
            .truth()
            .iter()
            .find(|t| t.catch_count > 0 && !t.sold)
            .expect("at least one caught name");
        let name = EnsName::from_label(caught.label.clone());
        let resolved = world.ens().resolve(&name).expect("resolves");
        let last_period = caught.periods.last().unwrap();
        assert_eq!(resolved, last_period.owner);
    }

    #[test]
    fn expired_uncaught_names_still_resolve_to_the_old_owner() {
        let world = tiny();
        let lapsed = world
            .truth()
            .iter()
            .find(|t| t.expired && t.catch_count == 0)
            .expect("at least one expired-uncaught name");
        let name = EnsName::from_label(lapsed.label.clone());
        // The paper's central hazard: the record survives expiry.
        assert_eq!(world.ens().resolve(&name), Some(lapsed.periods[0].owner));
    }

    #[test]
    fn deterministic_end_to_end() {
        let a = WorldConfig::small().with_names(150).with_seed(5).build();
        let b = WorldConfig::small().with_names(150).with_seed(5).build();
        assert_eq!(a.dataset_summary(), b.dataset_summary());
        assert_eq!(
            a.chain().transactions().last().map(|t| t.hash),
            b.chain().transactions().last().map(|t| t.hash)
        );
    }

    #[test]
    fn no_auction_counterfactual_removes_premiums_and_the_21_day_wait() {
        let cfg = WorldConfig::small().with_names(800).with_seed(31);
        let with_auction = cfg.clone().build();
        let without = cfg.without_auction().build();

        // No premium is ever paid in the counterfactual.
        let premium_events = |w: &World| {
            w.ens()
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        &e.kind,
                        ens_registry::EnsEventKind::NameRegistered { premium, .. }
                        if !premium.is_zero()
                    )
                })
                .count()
        };
        assert!(premium_events(&with_auction) > 0);
        assert_eq!(premium_events(&without), 0);

        // Catches happen right at grace end instead of after the auction.
        let min_gap_days = |w: &World| {
            w.truth()
                .iter()
                .flat_map(|t| {
                    t.periods
                        .windows(2)
                        .map(|p| (p[0].expiry, p[1]))
                        .collect::<Vec<_>>()
                })
                .filter(|(_, p1)| p1.kind == crate::plan::OwnerKind::Catcher)
                .map(|(e, p1)| (p1.start.0 - e.0) as f64 / 86_400.0)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(min_gap_days(&with_auction) >= 90.0 + 8.0, "auction floor");
        let cf_min = min_gap_days(&without);
        assert!(
            (90.0..92.0).contains(&cf_min),
            "drop race at grace end, got {cf_min}"
        );
    }

    #[test]
    fn subgraph_and_etherscan_views_cover_the_world() {
        let world = tiny();
        let sg = world.subgraph(ens_subgraph::SubgraphConfig::lossless());
        assert_eq!(sg.stats().domains, 400);
        let scan = world.etherscan();
        assert_eq!(scan.total_transactions(), world.chain().transaction_count());
        // Custodial pools got labelled.
        assert!(scan.labels().len() >= world.config.senders.custodial_pool);
    }
}
