//! World configuration: scale, time range, and every behavioural knob.
//!
//! Defaults are calibrated against the paper's aggregates (DESIGN.md §5);
//! scale presets trade runtime for statistical stability. Counts scale
//! linearly with `n_names`, so shape-level comparisons (ratios, orderings,
//! crossovers) hold at any scale.

use ens_types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::namegen::ClassMix;

/// Renewal / dropcatching behaviour parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BehaviorParams {
    /// Probability an organic owner renews at each expiry.
    pub renew_prob_base: f64,
    /// Additional renewal probability per decade of income
    /// (`log10(1 + income/1000)`), capped by clamping to [0, 0.97].
    pub renew_income_weight: f64,
    /// Fraction of renewals that happen *during* the grace period.
    pub late_renewal_frac: f64,
    /// Probability a dropcatcher renews a caught name at its next expiry.
    pub catcher_renew_prob: f64,
    /// Base catch probability; multiplied by desirability and income factors.
    pub catch_base: f64,
    /// Fraction of catches that pay a premium (register inside the 21-day
    /// Dutch auction). Paper: 16,092 / 241,283 ≈ 6.7%.
    pub premium_catch_frac: f64,
    /// Fraction of catches landing within 24h of the premium hitting zero.
    /// Paper: 20,014 on the very day.
    pub day_of_premium_end_frac: f64,
    /// Fraction of catches in the week after the premium ends.
    pub week_after_frac: f64,
    /// Mean (days) of the exponential tail for later catches.
    pub tail_mean_days: f64,
    /// Dropcatcher pool size as a fraction of `n_names`.
    pub catcher_pool_frac: f64,
    /// Pareto shape for catcher activity concentration (lower ⇒ whalier).
    pub catcher_pareto_alpha: f64,
    /// Whether the 21-day premium Dutch auction exists. `false` builds the
    /// counterfactual protocol: names become registrable at base rent the
    /// moment grace ends, and catch bots race to that instant instead.
    pub auction_enabled: bool,
}

impl Default for BehaviorParams {
    fn default() -> Self {
        BehaviorParams {
            renew_prob_base: 0.42,
            renew_income_weight: 0.06,
            late_renewal_frac: 0.15,
            catcher_renew_prob: 0.30,
            catch_base: 0.175,
            premium_catch_frac: 0.08,
            day_of_premium_end_frac: 0.35,
            week_after_frac: 0.25,
            tail_mean_days: 85.0,
            catcher_pool_frac: 1.0 / 40.0,
            catcher_pareto_alpha: 1.05,
            auction_enabled: true,
        }
    }
}

/// Sender / income parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SenderParams {
    /// Probability a name attracts any organic income at all (default
    /// 1.0). The paper-scale preset lowers it: most of the 3.1M real
    /// names never receive direct funds, and the paper's ~3.1
    /// transactions per name is unreachable while every name carries at
    /// least one sender. At 1.0 the planner draws no extra randomness,
    /// so existing worlds are byte-identical to before the knob existed.
    pub income_prob: f64,
    /// λ of the Poisson for senders per owned name (plus one).
    pub senders_per_name_lambda: f64,
    /// Geometric success probability for extra transactions per sender
    /// (transactions per sender = 1 + Geometric(p)).
    pub txs_per_sender_p: f64,
    /// Median USD per transaction before the per-name multiplier.
    pub amount_median_usd: f64,
    /// Log-space σ of the per-transaction amount.
    pub amount_sigma: f64,
    /// Log-space σ of the per-name income multiplier.
    pub income_multiplier_sigma: f64,
    /// Probability a sender is a Coinbase custodial address.
    pub coinbase_sender_frac: f64,
    /// Probability a sender is a non-Coinbase custodial exchange address.
    pub custodial_sender_frac: f64,
    /// Size of the shared custodial-exchange address pool (paper: 558).
    pub custodial_pool: usize,
    /// Size of the shared Coinbase address pool (paper: 25).
    pub coinbase_pool: usize,
    /// Probability each sender keeps paying the old address during the
    /// expiry→re-registration gap (the *hijackable* funds of Fig 7).
    pub gap_continue_prob: f64,
    /// Probability a caught domain attracts misdirected common-sender funds.
    /// The paper observes 940 / 241K ≈ 0.4% at 3.1M-name scale; the default
    /// is raised so the Fig 8–11 populations are statistically stable at
    /// simulation scale (documented in EXPERIMENTS.md).
    pub misdirect_domain_prob: f64,
    /// Median USD of a misdirected transaction.
    pub misdirect_amount_median: f64,
    /// Log-space σ of misdirected amounts.
    pub misdirect_amount_sigma: f64,
    /// Probability a non-common sender keeps paying the *old owner's
    /// address directly* (bypassing ENS) after the catch — detector noise.
    pub bypass_sender_prob: f64,
}

impl Default for SenderParams {
    fn default() -> Self {
        SenderParams {
            income_prob: 1.0,
            senders_per_name_lambda: 6.5,
            txs_per_sender_p: 0.35,
            amount_median_usd: 110.0,
            amount_sigma: 2.0,
            income_multiplier_sigma: 1.0,
            coinbase_sender_frac: 0.04,
            custodial_sender_frac: 0.10,
            custodial_pool: 40,
            coinbase_pool: 8,
            gap_continue_prob: 0.30,
            misdirect_domain_prob: 0.05,
            misdirect_amount_median: 400.0,
            misdirect_amount_sigma: 1.4,
            bypass_sender_prob: 0.10,
        }
    }
}

/// Resale-market and miscellaneous event rates.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MarketParams {
    /// Probability a caught name is listed on the marketplace (paper: 8%).
    pub list_prob: f64,
    /// Probability a listed name sells (paper: 12,130 / 19,987 ≈ 61%).
    pub sale_prob_given_listed: f64,
    /// Probability an organic owner creates subdomains
    /// (paper: 846K subdomains / 3.1M names ≈ 0.27 per name).
    pub subdomain_prob: f64,
    /// Probability of a private (non-expiry) NFT transfer during ownership —
    /// a negative control for re-registration detection.
    pub transfer_prob: f64,
}

impl Default for MarketParams {
    fn default() -> Self {
        MarketParams {
            list_prob: 0.08,
            sale_prob_given_listed: 0.61,
            subdomain_prob: 0.18,
            transfer_prob: 0.02,
        }
    }
}

/// Full world configuration.
///
/// ```
/// use workload::WorldConfig;
/// let world = WorldConfig::small().with_names(60).with_seed(1).build();
/// let s = world.dataset_summary();
/// assert_eq!(s.total_names, 60);
/// assert!(s.transactions > 100);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed — two configs with equal fields build identical worlds.
    pub seed: u64,
    /// Number of second-level names to simulate.
    pub n_names: usize,
    /// Simulation start (chain genesis is one day earlier).
    pub start: Timestamp,
    /// The 2020 contract-migration renewal deadline: legacy names not
    /// renewed by (roughly) this date expire, producing Fig 2's spike.
    pub migration_deadline: Timestamp,
    /// End of the observation window (the paper observes through Sep 2023).
    pub observation_end: Timestamp,
    /// Fraction of names that are auction-era (legacy) registrations.
    pub legacy_fraction: f64,
    /// Lexical class mix.
    pub class_mix: ClassMix,
    /// Renewal / catching behaviour.
    pub behavior: BehaviorParams,
    /// Sender / income behaviour.
    pub senders: SenderParams,
    /// Resale-market behaviour.
    pub market: MarketParams,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            n_names: 20_000,
            start: Timestamp::from_ymd(2020, 1, 15),
            migration_deadline: Timestamp::from_ymd(2020, 5, 4),
            observation_end: Timestamp::from_ymd(2023, 9, 30),
            legacy_fraction: 0.12,
            class_mix: ClassMix::default(),
            behavior: BehaviorParams::default(),
            senders: SenderParams::default(),
            market: MarketParams::default(),
        }
    }
}

impl WorldConfig {
    /// A small world (~2K names) for unit and integration tests.
    pub fn small() -> WorldConfig {
        WorldConfig {
            n_names: 2_000,
            ..WorldConfig::default()
        }
    }

    /// A medium world (~20K names): the default for examples.
    pub fn medium() -> WorldConfig {
        WorldConfig::default()
    }

    /// A large world (~60K names) for the benchmark/repro harness.
    pub fn large() -> WorldConfig {
        WorldConfig {
            n_names: 60_000,
            ..WorldConfig::default()
        }
    }

    /// The paper-scale world: 3.1M names and ~9.7M on-chain transactions,
    /// matching the dataset the paper studies (3.1M names / 9.7M txs ⇒
    /// ~3.1 transactions per name, against the default presets' ~25 —
    /// the presets oversample per-name traffic so small worlds stay
    /// statistically stable; at 3.1M names the paper's own sparse rate is
    /// the stable one). Calibrated by giving most names no direct income
    /// (`income_prob`), thinning the income process for the rest
    /// (`senders_per_name_lambda`, `txs_per_sender_p`), raising
    /// `catch_base` to offset the income-starved catch multiplier (the
    /// caught fraction lands at the paper's 241K / 3.1M ≈ 7.8% of names),
    /// and pinning the subdomain rate to the paper's 846K / 3.1M ≈ 0.27
    /// per name. Counts scale linearly with `n_names`, so the rates are
    /// verified on a small sample
    /// (`paper_scale_transaction_rate_matches_the_paper`).
    pub fn paper_scale() -> WorldConfig {
        let mut cfg = WorldConfig {
            n_names: 3_100_000,
            ..WorldConfig::default()
        };
        cfg.senders.income_prob = 0.21;
        cfg.senders.senders_per_name_lambda = 0.35;
        cfg.senders.txs_per_sender_p = 0.75;
        cfg.behavior.catch_base = 1.65;
        cfg.market.subdomain_prob = 0.16;
        cfg
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> WorldConfig {
        self.seed = seed;
        self
    }

    /// Replaces the name count.
    pub fn with_names(mut self, n: usize) -> WorldConfig {
        self.n_names = n;
        self
    }

    /// The counterfactual world without the premium Dutch auction
    /// (DNS-style fastest-finger drops).
    pub fn without_auction(mut self) -> WorldConfig {
        self.behavior.auction_enabled = false;
        self
    }

    /// Monthly registration intensity for the controller era: ramps up from
    /// Feb 2020 to a peak in Oct 2022, then declines — Fig 2's registration
    /// curve. Returns `(month_start, weight)` pairs covering the window.
    pub fn registration_month_weights(&self) -> Vec<(Timestamp, f64)> {
        let first = Timestamp::from_ymd(2020, 2, 1);
        let peak_month = Timestamp::from_ymd(2022, 10, 1).month_index();
        let first_idx = first.month_index();
        let last_idx = self.observation_end.month_index();
        let mut out = Vec::new();
        let mut idx = first_idx;
        let mut cursor = first;
        while idx <= last_idx {
            let weight = if idx <= peak_month {
                1.0 + 4.0 * (idx - first_idx) as f64 / (peak_month - first_idx) as f64
            } else {
                let fall = (idx - peak_month) as f64 / (last_idx - peak_month).max(1) as f64;
                5.0 - 2.5 * fall
            };
            out.push((cursor, weight));
            // Advance to the first day of the next month.
            let (y, m, _) = cursor.to_ymd();
            cursor = if m == 12 {
                Timestamp::from_ymd(y + 1, 1, 1)
            } else {
                Timestamp::from_ymd(y, m + 1, 1)
            };
            idx += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_the_paper_window() {
        let cfg = WorldConfig::default();
        assert!(cfg.start < cfg.migration_deadline);
        assert!(cfg.migration_deadline < cfg.observation_end);
        assert_eq!(cfg.observation_end.to_ymd(), (2023, 9, 30));
    }

    #[test]
    fn month_weights_ramp_then_decline() {
        let weights = WorldConfig::default().registration_month_weights();
        // Feb 2020 .. Sep 2023 inclusive = 44 months.
        assert_eq!(weights.len(), 44);
        let w = |y, m| {
            weights
                .iter()
                .find(|(t, _)| t.to_ymd().0 == y && t.to_ymd().1 == m)
                .unwrap()
                .1
        };
        assert!(w(2020, 2) < w(2021, 6));
        assert!(w(2021, 6) < w(2022, 10));
        assert!(w(2022, 10) > w(2023, 9));
        assert!(weights.iter().all(|(_, w)| *w > 0.0));
    }

    #[test]
    fn presets_differ_only_in_scale() {
        assert_eq!(WorldConfig::small().n_names, 2_000);
        assert_eq!(WorldConfig::medium().n_names, 20_000);
        assert_eq!(WorldConfig::large().n_names, 60_000);
        assert_eq!(WorldConfig::small().with_seed(9).seed, 9);
    }
}

#[cfg(test)]
mod paper_scale_tests {
    use super::*;

    /// Counts scale linearly with `n_names`, so a 4K-name sample pins the
    /// paper-scale per-name rates the full 3.1M-name build extrapolates:
    /// ~3.13 transactions per name (9.7M / 3.1M), ~7.8% of names caught
    /// (241,283 / 3.1M), ~0.27 subdomains per name (846K / 3.1M).
    #[test]
    fn paper_scale_transaction_rate_matches_the_paper() {
        let cfg = WorldConfig::paper_scale();
        assert_eq!(cfg.n_names, 3_100_000);
        let s = cfg.with_names(4_000).with_seed(1).build().dataset_summary();
        let per_name = |n: usize| n as f64 / 4_000.0;
        let tx_rate = per_name(s.transactions);
        assert!(
            (2.85..=3.40).contains(&tx_rate),
            "paper is ~3.13 txs/name, got {tx_rate:.3}"
        );
        let caught = per_name(s.caught_names);
        assert!(
            (0.055..=0.105).contains(&caught),
            "paper is ~7.8% of names caught, got {:.1}%",
            caught * 100.0
        );
        let subs = per_name(s.subdomains);
        assert!(
            (0.20..=0.34).contains(&subs),
            "paper is ~0.27 subdomains/name, got {subs:.3}"
        );
    }

    /// The `income_prob` knob draws no randomness at its default of 1.0,
    /// so worlds generated before the knob existed are unchanged.
    #[test]
    fn default_income_prob_changes_nothing() {
        assert_eq!(SenderParams::default().income_prob, 1.0);
        let a = WorldConfig::small().with_names(120).with_seed(3).build();
        let mut cfg = WorldConfig::small().with_names(120).with_seed(3);
        cfg.senders.income_prob = 1.0;
        let b = cfg.build();
        assert_eq!(a.dataset_summary(), b.dataset_summary());
        assert_eq!(
            a.chain().transactions().last().map(|t| t.hash),
            b.chain().transactions().last().map(|t| t.hash)
        );
    }
}
