//! Phase A of world generation: *planning*.
//!
//! Every name's lifecycle (registration → renewals → expiry → possible
//! dropcatch → possible resale, plus all sender traffic) is planned as pure
//! data with timestamps, name by name. Because the simulated chain's clock
//! is monotone, the plan is then globally sorted by time and executed in one
//! pass by [`crate::engine`]. Planning also produces the [`GroundTruth`]
//! that integration tests compare the measurement pipeline against — the
//! pipeline itself never sees it.

use ens_types::{Address, Duration, Label, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;
use crate::dist::{
    chance, exponential, geometric, log_normal, poisson, weighted_choice, CumulativeTable,
};
use crate::namegen::{NameClass, NameGenerator, NameSpec};

/// The 90-day grace period (mirrors `ens_registry::GRACE_PERIOD` without
/// the dependency).
const GRACE: Duration = Duration::from_days(90);

/// One planned action against the world.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlannedAction {
    /// Auction-era registration imported at the 2020 migration.
    ImportLegacy {
        /// The name.
        label: Label,
        /// Its owner.
        owner: Address,
        /// Migration-mandated expiry.
        expiry: Timestamp,
        /// Whether the migration event publishes the plaintext label
        /// (most do; the residue is the paper's unrecoverable set).
        publish_label: bool,
    },
    /// A registration commitment (front-running guard).
    Commit {
        /// The name.
        label: Label,
        /// The prospective owner.
        owner: Address,
        /// Commitment secret.
        secret: u64,
    },
    /// A controller registration (pays rent + any premium at execution).
    Register {
        /// The name.
        label: Label,
        /// The new owner.
        owner: Address,
        /// Must match the earlier commitment.
        secret: u64,
        /// Registration length in years.
        years: u64,
    },
    /// A renewal.
    Renew {
        /// The name.
        label: Label,
        /// Who pays (usually the holder).
        payer: Address,
        /// Extension in years.
        years: u64,
    },
    /// A plain value transfer, amount in USD (converted at the day's price
    /// during execution).
    Send {
        /// Sender.
        from: Address,
        /// Recipient.
        to: Address,
        /// Amount in USD.
        usd: f64,
    },
    /// A private NFT transfer (not a sale).
    Transfer {
        /// The name.
        label: Label,
        /// Current holder.
        from: Address,
        /// New holder.
        to: Address,
    },
    /// A marketplace listing.
    List {
        /// The name.
        label: Label,
        /// The seller.
        seller: Address,
        /// Asking price in USD.
        usd: f64,
    },
    /// A marketplace sale: payment + NFT transfer + resolver update.
    Sale {
        /// The name.
        label: Label,
        /// The seller.
        seller: Address,
        /// The buyer.
        buyer: Address,
        /// Sale price in USD.
        usd: f64,
    },
    /// An address claims a primary (reverse) name.
    SetReverse {
        /// The claiming address.
        addr: Address,
        /// The name claimed.
        label: Label,
    },
    /// Creation of one subdomain.
    Subdomain {
        /// Parent name.
        label: Label,
        /// Parent registrant (caller).
        caller: Address,
        /// Subdomain label text (validated at execution).
        sub_label: String,
        /// Subdomain owner.
        sub_owner: Address,
    },
}

/// A timestamped planned action. `seq` breaks ties deterministically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlannedEvent {
    /// When it happens.
    pub at: Timestamp,
    /// Global planning sequence number (tie-break).
    pub seq: u64,
    /// What happens.
    pub action: PlannedAction,
}

/// Who held a name during one registration period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OwnerKind {
    /// An organic user (first registrant or marketplace buyer).
    Organic,
    /// A dropcatcher.
    Catcher,
}

/// Ground truth for one ownership period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodTruth {
    /// The holder's wallet address.
    pub owner: Address,
    /// Organic user or dropcatcher.
    pub kind: OwnerKind,
    /// Period start (registration time).
    pub start: Timestamp,
    /// Final expiry after renewals.
    pub expiry: Timestamp,
}

/// Ground truth for one planned misdirected transaction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MisdirectTruth {
    /// The common sender `c`.
    pub sender: Address,
    /// The old owner `a1` the funds were meant for.
    pub intended: Address,
    /// The catcher `a2` who received them.
    pub received_by: Address,
    /// Amount in USD.
    pub usd: f64,
    /// When.
    pub at: Timestamp,
}

/// Everything the planner decided about one name.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NameTruth {
    /// The label.
    pub label: Label,
    /// Its lexical class.
    pub class: NameClass,
    /// Its desirability score.
    pub desirability: f64,
    /// Auction-era name?
    pub legacy: bool,
    /// Ownership periods in order.
    pub periods: Vec<PeriodTruth>,
    /// Planned organic income (USD) of the first period.
    pub first_income_usd: f64,
    /// Did the first period end in expiry (inside the observation window)?
    pub expired: bool,
    /// How many times the name was dropcaught.
    pub catch_count: usize,
    /// Planned misdirected transactions (the paper's `c → a2` pattern).
    pub misdirected: Vec<MisdirectTruth>,
    /// Planned hijackable USD (funds sent to the lapsed owner's address
    /// between expiry and re-registration).
    pub hijackable_usd: f64,
    /// Was it listed on the marketplace after a catch?
    pub listed: bool,
    /// Did it sell?
    pub sold: bool,
}

/// The full planning output.
#[derive(Clone, Debug)]
pub struct Plan {
    /// All events, globally sorted by `(at, seq)`.
    pub events: Vec<PlannedEvent>,
    /// Per-name ground truth.
    pub truth: Vec<NameTruth>,
    /// The dropcatcher address pool.
    pub catchers: Vec<Address>,
    /// Shared non-Coinbase custodial sender addresses.
    pub custodial_pool: Vec<Address>,
    /// Shared Coinbase sender addresses.
    pub coinbase_pool: Vec<Address>,
}

/// A sender planned for one ownership period.
#[derive(Clone, Copy, Debug)]
struct SenderInfo {
    addr: Address,
    /// True when drawn from a shared custodial/Coinbase pool. Carried for
    /// planner introspection; the analysis derives custody from the label
    /// service, exactly like the paper.
    #[allow(dead_code)]
    custodial: bool,
}

/// Builds the full plan for a configuration.
pub fn build_plan(cfg: &WorldConfig) -> Plan {
    Planner::new(cfg).run()
}

struct Planner<'a> {
    cfg: &'a WorldConfig,
    rng: StdRng,
    namegen: NameGenerator,
    events: Vec<PlannedEvent>,
    truth: Vec<NameTruth>,
    seq: u64,
    secret: u64,
    sender_counter: u64,
    owner_counter: u64,
    buyer_counter: u64,
    catchers: Vec<Address>,
    catcher_table: CumulativeTable,
    custodial_pool: Vec<Address>,
    coinbase_pool: Vec<Address>,
    month_starts: Vec<Timestamp>,
    month_weights: Vec<f64>,
}

impl<'a> Planner<'a> {
    fn new(cfg: &'a WorldConfig) -> Planner<'a> {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x656e735f77697a64);
        let n_catchers = ((cfg.n_names as f64 * cfg.behavior.catcher_pool_frac) as usize).max(20);
        let catchers: Vec<Address> = (0..n_catchers)
            .map(|i| Address::derive_indexed("catcher", i as u64))
            .collect();
        // Pareto-distributed activity weights: a few whales catch thousands.
        let weights: Vec<f64> = (0..n_catchers)
            .map(|_| crate::dist::pareto(&mut rng, 1.0, cfg.behavior.catcher_pareto_alpha))
            .collect();
        let catcher_table = CumulativeTable::new(&weights);
        let custodial_pool = (0..cfg.senders.custodial_pool)
            .map(|i| Address::derive_indexed("exchange", i as u64))
            .collect();
        let coinbase_pool = (0..cfg.senders.coinbase_pool)
            .map(|i| Address::derive_indexed("coinbase", i as u64))
            .collect();
        let months = cfg.registration_month_weights();
        Planner {
            cfg,
            rng,
            namegen: NameGenerator::new(cfg.class_mix.clone()),
            events: Vec::new(),
            truth: Vec::with_capacity(cfg.n_names),
            seq: 0,
            secret: 0,
            sender_counter: 0,
            owner_counter: 0,
            buyer_counter: 0,
            catchers,
            catcher_table,
            custodial_pool,
            coinbase_pool,
            month_starts: months.iter().map(|(t, _)| *t).collect(),
            month_weights: months.iter().map(|(_, w)| *w).collect(),
        }
    }

    fn run(mut self) -> Plan {
        for _ in 0..self.cfg.n_names {
            let spec = self.namegen.generate(&mut self.rng);
            self.plan_name(spec);
        }
        self.events.sort_by_key(|e| (e.at, e.seq));
        Plan {
            events: self.events,
            truth: self.truth,
            catchers: self.catchers,
            custodial_pool: self.custodial_pool,
            coinbase_pool: self.coinbase_pool,
        }
    }

    // ------------------------------------------------------------------
    // Event helpers
    // ------------------------------------------------------------------

    fn push(&mut self, at: Timestamp, action: PlannedAction) {
        self.events.push(PlannedEvent {
            at,
            seq: self.seq,
            action,
        });
        self.seq += 1;
    }

    fn uniform_ts(&mut self, a: Timestamp, b: Timestamp) -> Timestamp {
        debug_assert!(a < b, "empty time range");
        Timestamp(self.rng.gen_range(a.0..b.0))
    }

    fn uniform_days(&mut self, lo: u64, hi: u64) -> Duration {
        Duration::from_secs(self.rng.gen_range(lo * 86_400..hi * 86_400))
    }

    fn next_secret(&mut self) -> u64 {
        self.secret += 1;
        self.secret
    }

    // ------------------------------------------------------------------
    // Per-name lifecycle
    // ------------------------------------------------------------------

    fn plan_name(&mut self, spec: NameSpec) {
        let cfg = self.cfg;
        let obs_end = cfg.observation_end;
        let legacy = chance(&mut self.rng, cfg.legacy_fraction);

        self.owner_counter += 1;
        let first_owner = Address::derive_indexed("owner", self.owner_counter);

        let label = spec.label.clone();
        let mut truth = NameTruth {
            label: label.clone(),
            class: spec.class,
            desirability: spec.desirability,
            legacy,
            periods: Vec::new(),
            first_income_usd: 0.0,
            expired: false,
            catch_count: 0,
            misdirected: Vec::new(),
            hijackable_usd: 0.0,
            listed: false,
            sold: false,
        };

        // Initial registration.
        let (start_t, mut expiry) = if legacy {
            let t = self.uniform_ts(cfg.start, Timestamp::from_ymd(2020, 3, 15));
            let expiry = cfg.migration_deadline + self.uniform_days(0, 25);
            let publish_label = chance(&mut self.rng, 0.93);
            self.push(
                t,
                PlannedAction::ImportLegacy {
                    label: label.clone(),
                    owner: first_owner,
                    expiry,
                    publish_label,
                },
            );
            (t, expiry)
        } else {
            let month = weighted_choice(&mut self.rng, &self.month_weights.clone());
            let month_start = self.month_starts[month].max(cfg.start);
            let t = self.uniform_ts(month_start, month_start + Duration::from_days(27));
            let years = match weighted_choice(&mut self.rng, &[0.80, 0.15, 0.05]) {
                0 => 1,
                1 => 2,
                _ => 3,
            };
            let secret = self.next_secret();
            self.push(
                t - Duration::from_secs(3600),
                PlannedAction::Commit {
                    label: label.clone(),
                    owner: first_owner,
                    secret,
                },
            );
            self.push(
                t,
                PlannedAction::Register {
                    label: label.clone(),
                    owner: first_owner,
                    secret,
                    years,
                },
            );
            (t, t + Duration::from_years(years))
        };

        // Organic owners often claim the name as their primary (reverse)
        // name; dropcatchers rarely bother — the asymmetry the reverse-check
        // countermeasure exploits.
        if chance(&mut self.rng, 0.40) {
            let at = start_t + self.uniform_days(0, 20) + Duration::from_secs(7_200);
            if at < expiry && at < obs_end {
                self.push(
                    at,
                    PlannedAction::SetReverse {
                        addr: first_owner,
                        label: label.clone(),
                    },
                );
            }
        }

        // Per-name income multiplier: correlated with desirability, so the
        // lexically attractive names are also the financially busy ones.
        let income_mult = log_normal(&mut self.rng, 1.0, cfg.senders.income_multiplier_sigma)
            * (0.4 + 1.2 * spec.desirability);

        let mut holder = first_owner;
        let mut holder_kind = OwnerKind::Organic;
        let mut period_start = start_t;
        let mut first_cycle = true;

        loop {
            // First expiry before any renewal: the only span where the
            // holder is guaranteed to be a live registrant (late renewals
            // leave an expired gap mid-period).
            let first_expiry = expiry;
            // --- Renewals: fold into the final expiry of this period. ---
            let renew_prob = match holder_kind {
                // Income is planned after the renewal horizon is known, so
                // the decision uses the per-name income multiplier as its
                // wealth proxy (they are monotonically related).
                OwnerKind::Organic => {
                    let inc = (1.0 + income_mult * 20.0).log10();
                    (cfg.behavior.renew_prob_base + cfg.behavior.renew_income_weight * inc)
                        .clamp(0.0, 0.95)
                }
                OwnerKind::Catcher => cfg.behavior.catcher_renew_prob,
            };
            while expiry <= obs_end && chance(&mut self.rng, renew_prob) {
                let late = chance(&mut self.rng, cfg.behavior.late_renewal_frac);
                let renew_at = if late {
                    expiry + self.uniform_days(1, 80)
                } else {
                    let early = self.uniform_days(1, 60);
                    let candidate = Timestamp(expiry.0.saturating_sub(early.as_secs()));
                    Timestamp(candidate.0.max(period_start.0 + 7_200))
                };
                self.push(
                    renew_at,
                    PlannedAction::Renew {
                        label: label.clone(),
                        payer: holder,
                        years: 1,
                    },
                );
                expiry += Duration::from_years(1);
            }

            truth.periods.push(PeriodTruth {
                owner: holder,
                kind: holder_kind,
                start: period_start,
                expiry,
            });

            // --- Organic income + side activity during this period. ---
            let income_window_end = expiry.min(obs_end);
            let mut period_senders: Vec<SenderInfo> = Vec::new();
            if holder_kind == OwnerKind::Organic && period_start < income_window_end {
                let (income, senders) =
                    self.plan_income(holder, period_start, income_window_end, income_mult);
                if first_cycle {
                    truth.first_income_usd = income;
                }
                period_senders = senders;

                if first_cycle {
                    let safe_end = first_expiry.min(income_window_end);
                    self.plan_side_activity(&label, holder, period_start, safe_end);
                }
            }

            if expiry > obs_end {
                break; // Held through the end of the observation window.
            }
            if first_cycle {
                truth.expired = true;
            }

            // --- Dropcatch decision. ---
            // Later cycles: speculators price a name on its *historical*
            // income (the resolver still carries the old traffic), slightly
            // discounted — this is what keeps hot names cycling through
            // multiple catchers (Fig 4's tail).
            let income_for_catch = if first_cycle {
                truth.first_income_usd
            } else {
                truth.first_income_usd * 0.6
            };
            let p_catch = self.catch_probability(spec.desirability, income_for_catch);
            let grace_end = expiry + GRACE;
            let caught_at = if chance(&mut self.rng, p_catch) {
                let delay = self.sample_catch_delay();
                let t = grace_end + delay;
                (t + Duration::from_days(1) <= obs_end).then_some(t)
            } else {
                None
            };

            // --- Hijackable traffic into the gap (expiry → catch/end). ---
            let gap_end = caught_at.unwrap_or(obs_end);
            if expiry < gap_end {
                let hijackable =
                    self.plan_gap_traffic(&period_senders, holder, expiry, gap_end, income_mult);
                truth.hijackable_usd += hijackable;
            }

            let Some(catch_t) = caught_at else {
                break; // Expired and never re-registered: a control name.
            };

            // --- The catch itself. ---
            let catcher = self.catchers[self.catcher_table.sample(&mut self.rng)];
            let secret = self.next_secret();
            self.push(
                catch_t - Duration::from_secs(3600),
                PlannedAction::Commit {
                    label: label.clone(),
                    owner: catcher,
                    secret,
                },
            );
            self.push(
                catch_t,
                PlannedAction::Register {
                    label: label.clone(),
                    owner: catcher,
                    secret,
                    years: 1,
                },
            );
            truth.catch_count += 1;
            let catch_expiry = catch_t + Duration::from_years(1);
            if chance(&mut self.rng, 0.05) {
                let at = catch_t + self.uniform_days(0, 10) + Duration::from_secs(7_200);
                if at < obs_end {
                    self.push(
                        at,
                        PlannedAction::SetReverse {
                            addr: catcher,
                            label: label.clone(),
                        },
                    );
                }
            }

            // --- Misdirected common-sender traffic, or resale (exclusive). ---
            let did_misdirect = !period_senders.is_empty()
                && chance(&mut self.rng, cfg.senders.misdirect_domain_prob);
            let mut next_holder = catcher;
            let mut next_kind = OwnerKind::Catcher;
            let mut next_start = catch_t;

            if did_misdirect {
                self.plan_misdirects(
                    &mut truth,
                    &period_senders,
                    holder,
                    catcher,
                    catch_t,
                    obs_end,
                );
            } else if chance(&mut self.rng, cfg.market.list_prob) {
                truth.listed = true;
                let list_t = catch_t + self.uniform_days(5, 60);
                let ask = (log_normal(&mut self.rng, 300.0, 1.3) * (0.5 + 2.0 * spec.desirability))
                    .max(25.0);
                if list_t + Duration::from_days(1) < obs_end {
                    self.push(
                        list_t,
                        PlannedAction::List {
                            label: label.clone(),
                            seller: catcher,
                            usd: ask,
                        },
                    );
                    let sale_t = list_t + self.uniform_days(1, 90);
                    if chance(&mut self.rng, cfg.market.sale_prob_given_listed)
                        && sale_t < catch_expiry.min(obs_end)
                    {
                        truth.sold = true;
                        self.buyer_counter += 1;
                        let buyer = Address::derive_indexed("buyer", self.buyer_counter);
                        self.push(
                            sale_t,
                            PlannedAction::Sale {
                                label: label.clone(),
                                seller: catcher,
                                buyer,
                                usd: ask * 0.9,
                            },
                        );
                        next_holder = buyer;
                        next_kind = OwnerKind::Organic;
                        next_start = sale_t;
                    }
                }
            }

            // --- Bypass noise: non-common senders who keep paying the old
            //     owner's raw address after the catch. ---
            let common: Vec<Address> = truth.misdirected.iter().map(|m| m.sender).collect();
            let bypassers: Vec<Address> = period_senders
                .iter()
                .filter(|s| !common.contains(&s.addr))
                .map(|s| s.addr)
                .collect();
            for sender in bypassers {
                if chance(&mut self.rng, cfg.senders.bypass_sender_prob) {
                    let latest = obs_end.0.saturating_sub(86_400);
                    if catch_t.0 + 10 * 86_400 < latest {
                        let at =
                            self.uniform_ts(catch_t + Duration::from_days(10), Timestamp(latest));
                        let usd = self.sample_amount(income_mult);
                        self.push(
                            at,
                            PlannedAction::Send {
                                from: sender,
                                to: holder,
                                usd,
                            },
                        );
                    }
                }
            }

            // Next cycle: the catcher (or buyer) holds the name.
            holder = next_holder;
            holder_kind = next_kind;
            period_start = next_start;
            expiry = catch_expiry;
            first_cycle = false;
        }

        self.truth.push(truth);
    }

    // ------------------------------------------------------------------
    // Sub-planners
    // ------------------------------------------------------------------

    /// Plans organic income for a holder over a window; returns the total
    /// USD planned and the senders used.
    fn plan_income(
        &mut self,
        holder: Address,
        from: Timestamp,
        to: Timestamp,
        mult: f64,
    ) -> (f64, Vec<SenderInfo>) {
        let cfg = self.cfg;
        // At income_prob == 1.0 no roll is drawn, so worlds generated
        // before this knob existed replay byte-identically.
        if cfg.senders.income_prob < 1.0 && !chance(&mut self.rng, cfg.senders.income_prob) {
            return (0.0, Vec::new());
        }
        let n_senders = 1 + poisson(&mut self.rng, cfg.senders.senders_per_name_lambda) as usize;
        let mut senders = Vec::with_capacity(n_senders);
        let mut total = 0.0;
        for _ in 0..n_senders {
            let roll: f64 = self.rng.gen();
            let info = if roll < cfg.senders.coinbase_sender_frac {
                let idx = self.rng.gen_range(0..self.coinbase_pool.len());
                SenderInfo {
                    addr: self.coinbase_pool[idx],
                    custodial: true,
                }
            } else if roll < cfg.senders.coinbase_sender_frac + cfg.senders.custodial_sender_frac {
                let idx = self.rng.gen_range(0..self.custodial_pool.len());
                SenderInfo {
                    addr: self.custodial_pool[idx],
                    custodial: true,
                }
            } else {
                self.sender_counter += 1;
                SenderInfo {
                    addr: Address::derive_indexed("sender", self.sender_counter),
                    custodial: false,
                }
            };
            let n_txs = 1 + geometric(&mut self.rng, cfg.senders.txs_per_sender_p);
            for _ in 0..n_txs {
                let at = self.uniform_ts(from, to);
                let usd = self.sample_amount(mult);
                total += usd;
                self.push(
                    at,
                    PlannedAction::Send {
                        from: info.addr,
                        to: holder,
                        usd,
                    },
                );
            }
            senders.push(info);
        }
        (total, senders)
    }

    /// One income-shaped USD amount.
    fn sample_amount(&mut self, mult: f64) -> f64 {
        (log_normal(
            &mut self.rng,
            self.cfg.senders.amount_median_usd,
            self.cfg.senders.amount_sigma,
        ) * mult)
            .clamp(0.25, 5_000_000.0)
    }

    /// Subdomains and private transfers during the first organic period.
    fn plan_side_activity(
        &mut self,
        label: &Label,
        holder: Address,
        from: Timestamp,
        to: Timestamp,
    ) {
        const SUB_LABELS: &[&str] = &[
            "pay", "wallet", "app", "mail", "vault", "dao", "nft", "blog", "shop", "id",
        ];
        let span = to.0 - from.0;
        if span < 4 * 86_400 {
            return;
        }
        if chance(&mut self.rng, self.cfg.market.subdomain_prob) {
            let n = 1 + geometric(&mut self.rng, 0.6) as usize;
            let mut picks: Vec<&str> = SUB_LABELS.to_vec();
            for i in 0..n.min(picks.len()) {
                let j = self.rng.gen_range(i..picks.len());
                picks.swap(i, j);
                // First half of the period, before any transfer.
                let at = self.uniform_ts(from, Timestamp(from.0 + span / 2));
                self.sender_counter += 1;
                let sub_owner = Address::derive_indexed("subowner", self.sender_counter);
                self.push(
                    at,
                    PlannedAction::Subdomain {
                        label: label.clone(),
                        caller: holder,
                        sub_label: picks[i].to_string(),
                        sub_owner,
                    },
                );
            }
        }
        if chance(&mut self.rng, self.cfg.market.transfer_prob) {
            // Second half of the period: hand the NFT to another wallet of
            // (conceptually) the same user — must NOT read as a dropcatch.
            let at = self.uniform_ts(Timestamp(from.0 + span / 2 + 1), to);
            self.owner_counter += 1;
            let to_addr = Address::derive_indexed("owner", self.owner_counter);
            self.push(
                at,
                PlannedAction::Transfer {
                    label: label.clone(),
                    from: holder,
                    to: to_addr,
                },
            );
        }
    }

    /// Traffic still flowing to the lapsed owner's address while the name
    /// sits expired (hijackable, Fig 7). Returns the USD total.
    fn plan_gap_traffic(
        &mut self,
        senders: &[SenderInfo],
        old_holder: Address,
        from: Timestamp,
        to: Timestamp,
        mult: f64,
    ) -> f64 {
        if to.0 - from.0 < 2 * 86_400 {
            return 0.0;
        }
        let mut total = 0.0;
        for s in senders {
            if !chance(&mut self.rng, self.cfg.senders.gap_continue_prob) {
                continue;
            }
            let n = 1 + geometric(&mut self.rng, 0.6);
            for _ in 0..n {
                let at = self.uniform_ts(from, to);
                let usd = self.sample_amount(mult);
                total += usd;
                self.push(
                    at,
                    PlannedAction::Send {
                        from: s.addr,
                        to: old_holder,
                        usd,
                    },
                );
            }
        }
        total
    }

    /// Misdirected common-sender traffic after a catch: `c` paid `a1` while
    /// `a1` held the name, now unknowingly pays `a2` — and never `a1` again.
    fn plan_misdirects(
        &mut self,
        truth: &mut NameTruth,
        senders: &[SenderInfo],
        old_holder: Address,
        catcher: Address,
        catch_t: Timestamp,
        obs_end: Timestamp,
    ) {
        let cfg = self.cfg;
        let window_end = Timestamp((catch_t.0 + 330 * 86_400).min(obs_end.0 - 86_400));
        if window_end <= catch_t {
            return;
        }
        let n_common = (1 + geometric(&mut self.rng, 0.5) as usize).min(senders.len());
        // Deterministic partial shuffle to pick which senders are "common".
        let mut pool: Vec<SenderInfo> = senders.to_vec();
        for i in 0..n_common {
            let j = self.rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        for s in pool.iter().take(n_common) {
            let n_txs = if chance(&mut self.rng, 0.70) {
                1
            } else {
                2 + geometric(&mut self.rng, 0.45)
            };
            for _ in 0..n_txs {
                let at = self.uniform_ts(catch_t + Duration::from_secs(3600), window_end);
                let usd = (log_normal(
                    &mut self.rng,
                    cfg.senders.misdirect_amount_median,
                    cfg.senders.misdirect_amount_sigma,
                ))
                .clamp(1.0, 2_000_000.0);
                truth.misdirected.push(MisdirectTruth {
                    sender: s.addr,
                    intended: old_holder,
                    received_by: catcher,
                    usd,
                    at,
                });
                self.push(
                    at,
                    PlannedAction::Send {
                        from: s.addr,
                        to: catcher,
                        usd,
                    },
                );
            }
        }
    }

    /// The probability an expired name gets re-registered, increasing in
    /// desirability and prior income — the effect Table 1 and Fig 6 measure.
    /// The income factor is a power law: dropcatchers chase wallets with
    /// real money far harder than linearly (the paper's 3.3× mean-income
    /// contrast needs this selectivity).
    fn catch_probability(&self, desirability: f64, income_usd: f64) -> f64 {
        let b = &self.cfg.behavior;
        let des_mult = 0.2 + 1.8 * desirability;
        let inc_mult = ((income_usd / 15_000.0).powf(0.42)).clamp(0.20, 3.5);
        (b.catch_base * des_mult * inc_mult).clamp(0.0, 0.92)
    }

    /// Delay between grace end and the catch (Fig 3's shape, offset by the
    /// 90-day grace).
    fn sample_catch_delay(&mut self) -> Duration {
        let b = &self.cfg.behavior;
        if !b.auction_enabled {
            // No auction: bots race to the instant the grace period ends,
            // with the same long tail of late pickups.
            let choice = weighted_choice(&mut self.rng, &[0.45, 0.25, 0.30]);
            let days = match choice {
                0 => self.rng.gen::<f64>(),             // the drop race
                1 => 1.0 + 6.0 * self.rng.gen::<f64>(), // the first week
                _ => 7.0 + exponential(&mut self.rng, b.tail_mean_days),
            };
            return Duration::from_secs((days * 86_400.0) as u64);
        }
        let choice = weighted_choice(
            &mut self.rng,
            &[
                b.premium_catch_frac,
                b.day_of_premium_end_frac,
                b.week_after_frac,
                (1.0 - b.premium_catch_frac - b.day_of_premium_end_frac - b.week_after_frac)
                    .max(0.01),
            ],
        );
        let days = match choice {
            // Premium buyers cluster late in the auction where the price is
            // four or five digits, with a rare deep-pocket early entry.
            0 => (21.0 - exponential(&mut self.rng, 2.5)).clamp(8.0, 20.99),
            // The bots that fire the moment the premium hits zero.
            1 => 21.0 + self.rng.gen::<f64>(),
            // The following week.
            2 => 22.0 + 6.0 * self.rng.gen::<f64>(),
            // A long exponential tail.
            _ => 28.0 + exponential(&mut self.rng, b.tail_mean_days),
        };
        Duration::from_secs((days * 86_400.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan() -> Plan {
        build_plan(&WorldConfig::small().with_seed(3))
    }

    #[test]
    fn plan_is_sorted_and_deterministic() {
        let p1 = small_plan();
        let p2 = small_plan();
        assert_eq!(p1.events.len(), p2.events.len());
        assert_eq!(p1.events.first(), p2.events.first());
        assert_eq!(p1.events.last(), p2.events.last());
        for w in p1.events.windows(2) {
            assert!((w[0].at, w[0].seq) <= (w[1].at, w[1].seq));
        }
    }

    #[test]
    fn every_name_has_at_least_one_period() {
        let plan = small_plan();
        assert_eq!(plan.truth.len(), 2_000);
        for t in &plan.truth {
            assert!(!t.periods.is_empty(), "{} has no periods", t.label);
            // Periods are ordered and non-overlapping.
            for w in t.periods.windows(2) {
                assert!(w[0].expiry <= w[1].start, "{} overlapping periods", t.label);
            }
        }
    }

    #[test]
    fn catches_only_happen_to_expired_names() {
        let plan = small_plan();
        for t in &plan.truth {
            if t.catch_count > 0 {
                assert!(t.expired, "{} caught but never expired", t.label);
                assert!(t.periods.len() >= 2);
            }
        }
    }

    #[test]
    fn aggregate_rates_are_in_calibrated_ranges() {
        let plan = build_plan(&WorldConfig::default().with_seed(1));
        let n = plan.truth.len() as f64;
        let expired = plan.truth.iter().filter(|t| t.expired).count() as f64;
        let caught = plan.truth.iter().filter(|t| t.catch_count > 0).count() as f64;
        // Paper: 1.41M of 3.1M expired (~45%), 241K of those re-registered (~17%).
        assert!(
            (0.30..0.65).contains(&(expired / n)),
            "expired fraction {}",
            expired / n
        );
        assert!(
            (0.08..0.30).contains(&(caught / expired)),
            "catch rate {}",
            caught / expired
        );
    }

    #[test]
    fn caught_names_have_higher_income_and_desirability() {
        let plan = build_plan(&WorldConfig::default().with_seed(2));
        let caught: Vec<&NameTruth> = plan
            .truth
            .iter()
            .filter(|t| t.expired && t.catch_count > 0)
            .collect();
        let control: Vec<&NameTruth> = plan
            .truth
            .iter()
            .filter(|t| t.expired && t.catch_count == 0)
            .collect();
        assert!(caught.len() > 100 && control.len() > 100);
        let mean = |v: &[&NameTruth], f: fn(&NameTruth) -> f64| {
            v.iter().map(|t| f(t)).sum::<f64>() / v.len() as f64
        };
        let income_ratio =
            mean(&caught, |t| t.first_income_usd) / mean(&control, |t| t.first_income_usd);
        // Paper: 69,980 / 21,400 ≈ 3.3×. Accept a broad band.
        assert!(
            (1.8..6.5).contains(&income_ratio),
            "income ratio {income_ratio}"
        );
        let des_ratio = mean(&caught, |t| t.desirability) / mean(&control, |t| t.desirability);
        assert!(des_ratio > 1.3, "desirability ratio {des_ratio}");
    }

    #[test]
    fn misdirected_senders_never_pay_the_old_owner_afterwards() {
        let plan = build_plan(&WorldConfig::default().with_seed(4));
        let mut checked = 0;
        for t in &plan.truth {
            for m in &t.misdirected {
                checked += 1;
                // No planned Send from m.sender to m.intended at or after the
                // misdirect time.
                let betrayal = plan.events.iter().any(|e| {
                    matches!(
                        &e.action,
                        PlannedAction::Send { from, to, .. }
                        if *from == m.sender && *to == m.intended && e.at >= m.at
                    )
                });
                assert!(!betrayal, "{}: common sender kept paying a1", t.label);
            }
        }
        assert!(checked > 20, "only {checked} misdirected txs planned");
    }

    #[test]
    fn catch_delays_have_the_premium_cliff() {
        let plan = build_plan(&WorldConfig::default().with_seed(5));
        // Reconstruct delays from the ground truth periods.
        let mut at_premium = 0usize;
        let mut at_cliff = 0usize; // within a day after the premium's end
        let mut total = 0usize;
        for t in &plan.truth {
            for w in t.periods.windows(2) {
                if w[1].kind != OwnerKind::Catcher {
                    continue;
                }
                let delay_days = (w[1].start.0 - w[0].expiry.0) as f64 / 86_400.0 - 90.0;
                total += 1;
                if delay_days < 21.0 {
                    at_premium += 1;
                } else if delay_days < 22.0 {
                    at_cliff += 1;
                }
            }
        }
        assert!(total > 300, "too few catches ({total}) to assess");
        let premium_frac = at_premium as f64 / total as f64;
        let cliff_frac = at_cliff as f64 / total as f64;
        assert!(
            (0.03..0.15).contains(&premium_frac),
            "premium {premium_frac}"
        );
        assert!((0.25..0.45).contains(&cliff_frac), "cliff {cliff_frac}");
    }

    #[test]
    fn catcher_concentration_is_heavy_tailed() {
        let plan = build_plan(&WorldConfig::default().with_seed(6));
        let mut counts: std::collections::HashMap<Address, usize> = Default::default();
        for t in &plan.truth {
            for p in &t.periods {
                if p.kind == OwnerKind::Catcher {
                    *counts.entry(p.owner).or_default() += 1;
                }
            }
        }
        let mut v: Vec<usize> = counts.values().copied().collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = v.iter().sum();
        assert!(v.len() > 20);
        // The top catcher holds a disproportionate share (paper: 5,070 of
        // 241K ≈ 2%; Pareto weights make this several percent here).
        let top_share = v[0] as f64 / total as f64;
        assert!(top_share > 0.02, "top catcher share {top_share}");
    }
}
