//! Monetary amounts: wei-denominated ETH and cent-denominated USD.
//!
//! All arithmetic is integer-exact. ETH amounts are `u128` wei; USD amounts
//! are `u128` cents. Conversion between the two goes through the
//! `price-oracle` crate (USD cents per ETH on the day of the transaction,
//! mirroring the paper's use of the daily adjusted close).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Wei per ETH.
pub const WEI_PER_ETH: u128 = 1_000_000_000_000_000_000;

/// An amount of ETH, stored in wei.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Wei(pub u128);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(0);

    /// Constructs from whole ETH.
    pub const fn from_eth(eth: u64) -> Wei {
        Wei(eth as u128 * WEI_PER_ETH)
    }

    /// Constructs from milli-ETH (0.001 ETH units), the finest granularity
    /// the workload generator uses.
    pub const fn from_milli_eth(milli: u64) -> Wei {
        Wei(milli as u128 * (WEI_PER_ETH / 1000))
    }

    /// The amount as fractional ETH (lossy; only for display/statistics).
    pub fn as_eth_f64(self) -> f64 {
        self.0 as f64 / WEI_PER_ETH as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts to USD cents given a price in USD cents per whole ETH.
    ///
    /// Rounds down; uses 256-bit-free math by splitting the multiplication,
    /// so it cannot overflow for any realistic amount (≲ 10^11 ETH at a
    /// price ≲ $10^7).
    pub fn to_usd_cents(self, cents_per_eth: u64) -> UsdCents {
        let whole = self.0 / WEI_PER_ETH;
        let frac = self.0 % WEI_PER_ETH;
        let cents = whole * cents_per_eth as u128 + frac * cents_per_eth as u128 / WEI_PER_ETH;
        UsdCents(cents)
    }
}

impl Add for Wei {
    type Output = Wei;
    fn add(self, rhs: Wei) -> Wei {
        Wei(self.0 + rhs.0)
    }
}

impl AddAssign for Wei {
    fn add_assign(&mut self, rhs: Wei) {
        self.0 += rhs.0;
    }
}

impl Sub for Wei {
    type Output = Wei;
    fn sub(self, rhs: Wei) -> Wei {
        Wei(self.0 - rhs.0)
    }
}

impl SubAssign for Wei {
    fn sub_assign(&mut self, rhs: Wei) {
        self.0 -= rhs.0;
    }
}

impl Mul<u128> for Wei {
    type Output = Wei;
    fn mul(self, rhs: u128) -> Wei {
        Wei(self.0 * rhs)
    }
}

impl Div<u128> for Wei {
    type Output = Wei;
    fn div(self, rhs: u128) -> Wei {
        Wei(self.0 / rhs)
    }
}

impl Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, Add::add)
    }
}

impl fmt::Debug for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wei({self})")
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / WEI_PER_ETH;
        let frac = self.0 % WEI_PER_ETH;
        if frac == 0 {
            write!(f, "{whole} ETH")
        } else {
            // Print up to 6 decimal places, trimming trailing zeros.
            let micro = frac / (WEI_PER_ETH / 1_000_000);
            let s = format!("{micro:06}");
            write!(f, "{whole}.{} ETH", s.trim_end_matches('0'))
        }
    }
}

/// An amount of US dollars, stored in cents.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct UsdCents(pub u128);

impl UsdCents {
    /// Zero dollars.
    pub const ZERO: UsdCents = UsdCents(0);

    /// Constructs from whole dollars.
    pub const fn from_dollars(d: u64) -> UsdCents {
        UsdCents(d as u128 * 100)
    }

    /// The amount as fractional dollars (lossy; for display/statistics).
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// Whole dollars, rounding down.
    pub fn whole_dollars(self) -> u128 {
        self.0 / 100
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: UsdCents) -> UsdCents {
        UsdCents(self.0.saturating_sub(rhs.0))
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for UsdCents {
    type Output = UsdCents;
    fn add(self, rhs: UsdCents) -> UsdCents {
        UsdCents(self.0 + rhs.0)
    }
}

impl AddAssign for UsdCents {
    fn add_assign(&mut self, rhs: UsdCents) {
        self.0 += rhs.0;
    }
}

impl Sub for UsdCents {
    type Output = UsdCents;
    fn sub(self, rhs: UsdCents) -> UsdCents {
        UsdCents(self.0 - rhs.0)
    }
}

impl Sum for UsdCents {
    fn sum<I: Iterator<Item = UsdCents>>(iter: I) -> UsdCents {
        iter.fold(UsdCents::ZERO, Add::add)
    }
}

impl fmt::Debug for UsdCents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UsdCents({self})")
    }
}

impl fmt::Display for UsdCents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}.{:02}", self.0 / 100, self.0 % 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_constructors_agree() {
        assert_eq!(Wei::from_eth(3), Wei::from_milli_eth(3000));
        assert_eq!(Wei::from_eth(1).0, WEI_PER_ETH);
    }

    #[test]
    fn usd_conversion_is_exact_for_whole_eth() {
        // 2 ETH at $1,234.56 = $2,469.12
        let cents_per_eth = 123_456;
        assert_eq!(
            Wei::from_eth(2).to_usd_cents(cents_per_eth),
            UsdCents(246_912)
        );
    }

    #[test]
    fn usd_conversion_handles_fractional_eth() {
        // 0.5 ETH at $2,000.00 = $1,000.00
        let half = Wei(WEI_PER_ETH / 2);
        assert_eq!(half.to_usd_cents(200_000), UsdCents::from_dollars(1000));
    }

    #[test]
    fn usd_conversion_rounds_down() {
        // 1 wei at $2,000/ETH is far below a cent.
        assert_eq!(Wei(1).to_usd_cents(200_000), UsdCents::ZERO);
    }

    #[test]
    fn usd_conversion_no_overflow_at_scale() {
        // 10^9 ETH at $100,000/ETH — far beyond total supply.
        let big = Wei::from_eth(1_000_000_000);
        let cents = big.to_usd_cents(10_000_000);
        assert_eq!(cents.whole_dollars(), 100_000_000_000_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Wei::from_eth(2).to_string(), "2 ETH");
        assert_eq!(Wei::from_milli_eth(1500).to_string(), "1.5 ETH");
        assert_eq!(UsdCents(12_345).to_string(), "$123.45");
        assert_eq!(UsdCents(5).to_string(), "$0.05");
    }

    #[test]
    fn sums_and_saturation() {
        let total: Wei = [Wei::from_eth(1), Wei::from_eth(2)].into_iter().sum();
        assert_eq!(total, Wei::from_eth(3));
        assert_eq!(Wei::from_eth(1).saturating_sub(Wei::from_eth(5)), Wei::ZERO);
        assert_eq!(
            UsdCents::from_dollars(1).saturating_sub(UsdCents::from_dollars(2)),
            UsdCents::ZERO
        );
    }
}
