//! # ens-types
//!
//! Foundational Ethereum/ENS primitives shared by every crate in the
//! `ens-dropcatch` workspace:
//!
//! - [`keccak`] — a from-scratch Keccak-256 (Ethereum variant) with test
//!   vectors;
//! - [`hash`] — 32-byte hash newtypes ([`Hash32`], [`LabelHash`],
//!   [`NameHash`], [`TxHash`]);
//! - [`address`] — 20-byte [`Address`] with deterministic derivation and
//!   EIP-55 checksums;
//! - [`amount`] — integer-exact [`Wei`] and [`UsdCents`] amounts;
//! - [`time`] — [`Timestamp`], [`Duration`], [`BlockNumber`] and a small
//!   proleptic-Gregorian calendar;
//! - [`name`] — validated ENS [`Label`]s/[`EnsName`]s and the recursive
//!   [`namehash`](name::namehash);
//! - [`paged`] — the [`PagedSource`] trait every paged data-source endpoint
//!   implements, so one generic crawler can drive them all, plus the typed
//!   fault taxonomy ([`FaultKind`]) and the seeded chaos harness
//!   ([`ChaosSource`]/[`FaultProfile`]) used for failure injection.
//!
//! Everything is `#![forbid(unsafe_code)]`, dependency-light and
//! deterministic, per the simplicity-first idiom of the networking guides.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod amount;
pub mod hash;
pub mod keccak;
pub mod name;
pub mod paged;
pub mod time;

pub use address::Address;
pub use amount::{UsdCents, Wei, WEI_PER_ETH};
pub use hash::{Hash32, LabelHash, NameHash, TxHash};
pub use keccak::{keccak256, Keccak256};
pub use name::{namehash, EnsName, Label, NameError};
pub use paged::{
    ChaosSource, FaultKind, FaultProfile, FlakySource, KillSwitch, PageError, PagedBatch,
    PagedSource, ShardKey, PPM,
};
pub use time::{BlockNumber, Duration, Timestamp, SECONDS_PER_BLOCK, SECONDS_PER_DAY};

/// Glob-import convenience for downstream crates.
pub mod prelude {
    pub use crate::address::Address;
    pub use crate::amount::{UsdCents, Wei};
    pub use crate::hash::{Hash32, LabelHash, NameHash, TxHash};
    pub use crate::keccak::keccak256;
    pub use crate::name::{namehash, EnsName, Label, NameError};
    pub use crate::time::{BlockNumber, Duration, Timestamp};
}
