//! A from-scratch implementation of Keccak-256 (the original Keccak
//! submission with `0x01` domain padding, as used by Ethereum — *not*
//! NIST SHA3-256, which pads with `0x06`).
//!
//! ENS stores names on chain only as keccak-256 hashes (label hashes and the
//! recursive [`namehash`](crate::name::namehash)), which is exactly why the
//! paper's §3.1 describes crawling the full name set as hard. Implementing
//! the hash here keeps the reproduction self-contained and lets tests verify
//! the well-known ENS vectors.

/// Rotation offsets for the ρ step, indexed by lane `(x, y)` flattened as
/// `x + 5 * y`.
const RHO_OFFSETS: [u32; 25] = [
    0, 1, 62, 28, 27, //
    36, 44, 6, 55, 20, //
    3, 10, 43, 25, 39, //
    41, 45, 15, 21, 8, //
    18, 2, 61, 56, 14,
];

/// Round constants for the ι step of Keccak-f[1600] (24 rounds).
const ROUND_CONSTANTS: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rate in bytes for Keccak-256: (1600 - 2 * 256) / 8.
const RATE: usize = 136;

/// The Keccak-f[1600] permutation applied in place to the 25-lane state.
fn keccak_f1600(state: &mut [u64; 25]) {
    for &rc in &ROUND_CONSTANTS {
        // θ: column parity mixing.
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x + 5 * y] ^= d;
            }
        }

        // ρ and π: rotate lanes and permute their positions.
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                let idx = x + 5 * y;
                // π sends lane (x, y) to (y, 2x + 3y).
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[idx].rotate_left(RHO_OFFSETS[idx]);
            }
        }

        // χ: the only non-linear step.
        for y in 0..5 {
            for x in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ (!b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
            }
        }

        // ι: break symmetry with the round constant.
        state[0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher.
///
/// ```
/// use ens_types::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"hello");
/// assert_eq!(
///     hex::encode_fixed(&h.finalize()),
///     "1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
/// );
/// # mod hex { pub fn encode_fixed(b: &[u8; 32]) -> String {
/// #   b.iter().map(|x| format!("{x:02x}")).collect() } }
/// ```
#[derive(Clone)]
pub struct Keccak256 {
    state: [u64; 25],
    /// Bytes buffered for the current, not-yet-absorbed block.
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates an empty hasher.
    pub fn new() -> Self {
        Self {
            state: [0u64; 25],
            buffer: [0u8; RATE],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        // Fill a partially-buffered block first.
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == RATE {
                let block = self.buffer;
                self.absorb_block(&block);
                self.buffered = 0;
            }
            if input.is_empty() {
                return;
            }
        }
        // Absorb full blocks directly from the input.
        while input.len() >= RATE {
            let (block, rest) = input.split_at(RATE);
            let mut tmp = [0u8; RATE];
            tmp.copy_from_slice(block);
            self.absorb_block(&tmp);
            input = rest;
        }
        // Buffer the tail.
        self.buffer[..input.len()].copy_from_slice(input);
        self.buffered = input.len();
    }

    fn absorb_block(&mut self, block: &[u8; RATE]) {
        for (lane, chunk) in self.state.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        }
        keccak_f1600(&mut self.state);
    }

    /// Applies the Keccak padding (`0x01 .. 0x80`) and squeezes the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let mut block = [0u8; RATE];
        block[..self.buffered].copy_from_slice(&self.buffer[..self.buffered]);
        block[self.buffered] = 0x01;
        block[RATE - 1] |= 0x80;
        self.absorb_block(&block);

        let mut out = [0u8; 32];
        for (chunk, lane) in out.chunks_exact_mut(8).zip(self.state.iter()) {
            chunk.copy_from_slice(&lane.to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256 of `data`.
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn eth_label_matches_ens_vector() {
        // keccak256("eth") is the label hash used in every .eth namehash.
        assert_eq!(
            hex(&keccak256(b"eth")),
            "4f5b812789fc606be1b3b16908db13fc7a9adf7ca72641f84d75b47069d3d7f0"
        );
    }

    #[test]
    fn long_input_spanning_multiple_blocks() {
        // 300 bytes of 'a' exercises multi-block absorption.
        let data = vec![b'a'; 300];
        let one_shot = keccak256(&data);
        // Same input fed byte-by-byte must agree (incremental API).
        let mut h = Keccak256::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(one_shot, h.finalize());
    }

    #[test]
    fn rate_boundary_inputs() {
        // Exactly RATE and RATE±1 bytes hit the padding edge cases.
        for len in [RATE - 1, RATE, RATE + 1, 2 * RATE] {
            let data = vec![0x42u8; len];
            let mut h = Keccak256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), keccak256(&data), "len={len}");
        }
    }

    #[test]
    fn split_update_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0, 1, 7, 135, 136, 137, 999, 1000] {
            let mut h = Keccak256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), keccak256(&data), "split={split}");
        }
    }
}
