//! Simulation time: unix timestamps, durations, block numbers, and a small
//! proleptic-Gregorian calendar for daily price lookups and monthly
//! bucketing (Fig 2 of the paper is a monthly time series).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in a day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// Average Ethereum block time used by the simulated chain.
pub const SECONDS_PER_BLOCK: u64 = 12;

/// A span of time in seconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Duration {
        Duration(d * SECONDS_PER_DAY)
    }

    /// From 365-day years (ENS registrations are sold in these units).
    pub const fn from_years(y: u64) -> Duration {
        Duration(y * 365 * SECONDS_PER_DAY)
    }

    /// Whole days, rounding down.
    pub const fn as_days(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional days (for premium decay math).
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_DAY as f64
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Duration({}s)", self.0)
    }
}

/// A unix timestamp (seconds since epoch, UTC).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Builds a timestamp from a UTC calendar date at midnight.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Timestamp {
        Timestamp(days_from_civil(year, month, day) as u64 * SECONDS_PER_DAY)
    }

    /// The calendar date (UTC) this timestamp falls on.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        civil_from_days((self.0 / SECONDS_PER_DAY) as i64)
    }

    /// Day index since the unix epoch (for daily price lookups).
    pub const fn day_index(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// A monotone month key `year * 12 + (month - 1)` for monthly bucketing.
    pub fn month_index(self) -> i64 {
        let (y, m, _) = self.to_ymd();
        y as i64 * 12 + (m as i64 - 1)
    }

    /// Renders `YYYY-MM` (Fig 2's x axis).
    pub fn year_month_label(self) -> String {
        let (y, m, _) = self.to_ymd();
        format!("{y:04}-{m:02}")
    }

    /// Saturating time difference.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked time difference (None if `earlier` is later).
    pub fn checked_since(self, earlier: Timestamp) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        let rem = self.0 % SECONDS_PER_DAY;
        write!(
            f,
            "Timestamp({y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z)",
            rem / 3600,
            rem % 3600 / 60,
            rem % 60
        )
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A block height on the simulated chain.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockNumber(pub u64);

impl BlockNumber {
    /// The genesis block.
    pub const GENESIS: BlockNumber = BlockNumber(0);

    /// The next block height.
    pub const fn next(self) -> BlockNumber {
        BlockNumber(self.0 + 1)
    }
}

impl fmt::Display for BlockNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Days since 1970-01-01 for a proleptic-Gregorian date
/// (Howard Hinnant's `days_from_civil`).
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    debug_assert!((1..=12).contains(&month), "month out of range");
    debug_assert!((1..=31).contains(&day), "day out of range");
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let m = i64::from(month);
    let doy = ((153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + i64::from(day) - 1) as u64;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp(0).to_ymd(), (1970, 1, 1));
        assert_eq!(Timestamp::from_ymd(1970, 1, 1), Timestamp(0));
    }

    #[test]
    fn known_dates() {
        // 2020-02-01 00:00:00 UTC == 1580515200.
        assert_eq!(Timestamp::from_ymd(2020, 2, 1), Timestamp(1_580_515_200));
        // 2023-09-30 00:00:00 UTC == 1695even.
        assert_eq!(Timestamp::from_ymd(2023, 9, 30), Timestamp(1_696_032_000));
    }

    #[test]
    fn civil_round_trip_covers_leap_years() {
        for days in (-30_000..60_000).step_by(17) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
        }
    }

    #[test]
    fn leap_day_exists_in_2020_not_2021() {
        let leap = Timestamp::from_ymd(2020, 2, 29);
        assert_eq!(leap.to_ymd(), (2020, 2, 29));
        // 2021-03-01 minus one day is 2021-02-28.
        let t = Timestamp::from_ymd(2021, 3, 1) - Duration::from_days(1);
        assert_eq!(t.to_ymd(), (2021, 2, 28));
    }

    #[test]
    fn month_index_is_monotone_across_year_boundary() {
        let dec = Timestamp::from_ymd(2020, 12, 15);
        let jan = Timestamp::from_ymd(2021, 1, 15);
        assert_eq!(jan.month_index() - dec.month_index(), 1);
        assert_eq!(dec.year_month_label(), "2020-12");
    }

    #[test]
    fn durations() {
        assert_eq!(Duration::from_days(90).as_secs(), 90 * 86_400);
        assert_eq!(Duration::from_years(1).as_days(), 365);
        let t = Timestamp::from_ymd(2022, 5, 1);
        assert_eq!((t + Duration::from_days(3)).to_ymd(), (2022, 5, 4));
        assert_eq!(
            (t + Duration::from_days(3)).saturating_since(t).as_days(),
            3
        );
        assert_eq!(t.checked_since(t + Duration::from_days(1)), None);
    }
}
