//! The unified paged-source abstraction every crawler in the workspace
//! drives: a cursor goes in, a batch of items plus a has-more flag comes
//! out. The ENS subgraph, the transaction explorer and the NFT marketplace
//! all expose their query surfaces through this one trait, so pagination,
//! retry and partial-failure accounting live in exactly one place — the
//! generic `Crawler` in `ens-dropcatch::crawl` — instead of three
//! hand-rolled loops.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use crate::address::Address;

/// One page of items pulled from a paged endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagedBatch<T> {
    /// The items on this page, in the endpoint's stable order.
    pub items: Vec<T>,
    /// True if a subsequent request past these items would return more.
    pub has_more: bool,
}

/// A transient failure of one page request (rate limit, timeout, 5xx —
/// whatever the endpoint's failure mode is). The crawler retries these up
/// to its configured budget and accounts for every attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageError {
    /// Which source failed (its [`PagedSource::source_name`]).
    pub source: &'static str,
    /// The item offset of the failed request.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} page at offset {} failed: {}",
            self.source, self.offset, self.message
        )
    }
}

impl std::error::Error for PageError {}

/// A paged query endpoint with a stable item order.
///
/// Offsets are item cursors (not page numbers): `fetch(offset, limit)`
/// returns up to `limit` items starting at the `offset`-th item of the
/// stable ordering. Endpoints may return fewer than `limit` items (server
/// page caps); callers advance the cursor by the number of items actually
/// returned. Implementations must be cheap to query concurrently — the
/// sharded crawler calls `fetch` from multiple threads.
pub trait PagedSource {
    /// The item type this source serves.
    type Item;

    /// A short stable name for reports and errors ("subgraph", "txlist",
    /// "market").
    fn source_name(&self) -> &'static str;

    /// Total number of items, if the endpoint exposes it cheaply. Sources
    /// that report a total can be sharded by page range across threads;
    /// sources that don't are drained through a sequential cursor walk.
    fn total_hint(&self) -> Option<usize>;

    /// Fetches up to `limit` items starting at item `offset`.
    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError>;
}

impl<S: PagedSource> PagedSource for &S {
    type Item = S::Item;
    fn source_name(&self) -> &'static str {
        (**self).source_name()
    }
    fn total_hint(&self) -> Option<usize> {
        (**self).total_hint()
    }
    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError> {
        (**self).fetch(offset, limit)
    }
}

/// A key that can be assigned to a crawl shard. The hash must be stable
/// across runs and platforms (it feeds deterministic work division, never
/// a `HashMap`).
pub trait ShardKey {
    /// A stable 64-bit hash of the key.
    fn shard_hash(&self) -> u64;
}

impl ShardKey for Address {
    fn shard_hash(&self) -> u64 {
        // FNV-1a over the address bytes: stable, cheap, well-mixed enough
        // to balance txlist shards.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// A chaos wrapper for failure-injection tests: fails the first
/// `fail_attempts` fetches at every offset, then delegates. Deterministic
/// under any thread interleaving because the attempt count is tracked per
/// offset, not globally.
pub struct FlakySource<S> {
    inner: S,
    fail_attempts: u32,
    attempts: Mutex<HashMap<usize, u32>>,
}

impl<S> FlakySource<S> {
    /// Wraps `inner` so every offset fails its first `fail_attempts`
    /// fetches before succeeding.
    pub fn new(inner: S, fail_attempts: u32) -> FlakySource<S> {
        FlakySource {
            inner,
            fail_attempts,
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

impl<S: PagedSource> PagedSource for FlakySource<S> {
    type Item = S::Item;

    fn source_name(&self) -> &'static str {
        self.inner.source_name()
    }

    fn total_hint(&self) -> Option<usize> {
        self.inner.total_hint()
    }

    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError> {
        {
            let mut attempts = self.attempts.lock().expect("attempt log poisoned");
            let n = attempts.entry(offset).or_insert(0);
            if *n < self.fail_attempts {
                *n += 1;
                return Err(PageError {
                    source: self.inner.source_name(),
                    offset,
                    message: format!("injected failure (attempt {n})"),
                });
            }
        }
        self.inner.fetch(offset, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Numbers(usize);

    impl PagedSource for Numbers {
        type Item = usize;
        fn source_name(&self) -> &'static str {
            "numbers"
        }
        fn total_hint(&self) -> Option<usize> {
            Some(self.0)
        }
        fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<usize>, PageError> {
            let end = (offset + limit).min(self.0);
            Ok(PagedBatch {
                items: (offset..end).collect(),
                has_more: end < self.0,
            })
        }
    }

    #[test]
    fn flaky_source_fails_then_recovers_per_offset() {
        let flaky = FlakySource::new(Numbers(10), 2);
        assert!(flaky.fetch(0, 5).is_err());
        assert!(flaky.fetch(0, 5).is_err());
        let batch = flaky.fetch(0, 5).expect("third attempt succeeds");
        assert_eq!(batch.items, vec![0, 1, 2, 3, 4]);
        assert!(batch.has_more);
        // A different offset starts its own failure budget.
        assert!(flaky.fetch(5, 5).is_err());
    }

    #[test]
    fn shard_hash_is_stable_and_spread() {
        let a = Address::derive(b"a").shard_hash();
        let b = Address::derive(b"b").shard_hash();
        assert_ne!(a, b);
        assert_eq!(a, Address::derive(b"a").shard_hash(), "stable across calls");
    }
}
