//! The unified paged-source abstraction every crawler in the workspace
//! drives: a cursor goes in, a batch of items plus a has-more flag comes
//! out. The ENS subgraph, the transaction explorer and the NFT marketplace
//! all expose their query surfaces through this one trait, so pagination,
//! retry and partial-failure accounting live in exactly one place — the
//! generic `Crawler` in `ens-dropcatch::crawl` — instead of three
//! hand-rolled loops.
//!
//! Failures are *typed*: every [`PageError`] carries a [`FaultKind`] so the
//! crawler can tell a rate limit (back off and retry, honoring
//! `retry_after`) from a permanent hole (record a gap and move on). The
//! [`ChaosSource`] wrapper injects every fault kind deterministically from a
//! seeded [`FaultProfile`], which is what the failure-injection tests, the
//! chaos CI job and the CLI's `--chaos` flag all drive.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::address::Address;

/// One page of items pulled from a paged endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PagedBatch<T> {
    /// The items on this page, in the endpoint's stable order.
    pub items: Vec<T>,
    /// True if a subsequent request past these items would return more.
    pub has_more: bool,
}

/// What kind of failure a page request hit. The crawler's retry policy
/// keys off this: transient kinds are retried with (virtual-clock) backoff,
/// [`FaultKind::PermanentHole`] is never retried, and
/// [`FaultKind::RateLimited`] carries the server's requested wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The endpoint throttled the request; `retry_after_ms` is the wait the
    /// server asked for (0 if it didn't say).
    RateLimited {
        /// Server-requested wait before the next attempt, in milliseconds.
        retry_after_ms: u64,
    },
    /// The request timed out.
    Timeout,
    /// A 5xx-style transient server failure.
    ServerError,
    /// The offset range is permanently unavailable (deleted data, an
    /// indexing hole); retrying cannot help.
    PermanentHole,
    /// The endpoint returned a response the crawler cannot trust — e.g. a
    /// batch larger than the requested limit, which would corrupt shard
    /// merges if accepted.
    Malformed,
    /// The crawling *process* died after serving `after_n_pages` pages — a
    /// simulated crash injected by a [`KillSwitch`]. Unlike every other
    /// kind this is not a property of the endpoint: it aborts the whole
    /// crawl (no retry, no degrade-with-gaps) and is what the
    /// checkpoint/resume machinery recovers from.
    Killed {
        /// The page budget the kill switch was armed with.
        after_n_pages: u64,
    },
}

impl FaultKind {
    /// True if retrying the same request can ever succeed.
    pub fn is_retryable(self) -> bool {
        !matches!(self, FaultKind::PermanentHole | FaultKind::Killed { .. })
    }

    /// The server-requested wait, if this fault carries one.
    pub fn retry_after_ms(self) -> Option<u64> {
        match self {
            FaultKind::RateLimited { retry_after_ms } => Some(retry_after_ms),
            _ => None,
        }
    }

    /// Short stable label for reports ("rate-limited", "timeout", ...).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RateLimited { .. } => "rate-limited",
            FaultKind::Timeout => "timeout",
            FaultKind::ServerError => "server-error",
            FaultKind::PermanentHole => "permanent-hole",
            FaultKind::Malformed => "malformed",
            FaultKind::Killed { .. } => "killed",
        }
    }

    /// Stable snake_case key for metric names ("rate_limited", ...) — the
    /// counter-name counterpart of [`FaultKind::label`].
    pub fn metric_key(self) -> &'static str {
        match self {
            FaultKind::RateLimited { .. } => "rate_limited",
            FaultKind::Timeout => "timeout",
            FaultKind::ServerError => "server_error",
            FaultKind::PermanentHole => "permanent_hole",
            FaultKind::Malformed => "malformed",
            FaultKind::Killed { .. } => "killed",
        }
    }
}

/// A failure of one page request, classified by [`FaultKind`]. The crawler
/// retries the transient kinds up to its configured budget (accounting for
/// every attempt and every virtual millisecond of backoff) and turns the
/// permanent ones into recorded gaps or hard errors depending on its
/// failure policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageError {
    /// Which source failed (its [`PagedSource::source_name`]).
    pub source: &'static str,
    /// The item offset of the failed request.
    pub offset: usize,
    /// What kind of failure this is.
    pub kind: FaultKind,
    /// Human-readable cause.
    pub message: String,
}

impl PageError {
    /// A typed page error.
    pub fn new(
        kind: FaultKind,
        source: &'static str,
        offset: usize,
        message: impl Into<String>,
    ) -> PageError {
        PageError {
            source,
            offset,
            kind,
            message: message.into(),
        }
    }

    /// A rate-limit error carrying the server's requested wait.
    pub fn rate_limited(
        source: &'static str,
        offset: usize,
        retry_after_ms: u64,
        message: impl Into<String>,
    ) -> PageError {
        PageError::new(
            FaultKind::RateLimited { retry_after_ms },
            source,
            offset,
            message,
        )
    }

    /// A timeout error.
    pub fn timeout(source: &'static str, offset: usize, message: impl Into<String>) -> PageError {
        PageError::new(FaultKind::Timeout, source, offset, message)
    }

    /// A transient 5xx-style server error.
    pub fn server_error(
        source: &'static str,
        offset: usize,
        message: impl Into<String>,
    ) -> PageError {
        PageError::new(FaultKind::ServerError, source, offset, message)
    }

    /// A permanent hole: the range can never be fetched.
    pub fn permanent_hole(
        source: &'static str,
        offset: usize,
        message: impl Into<String>,
    ) -> PageError {
        PageError::new(FaultKind::PermanentHole, source, offset, message)
    }

    /// A malformed/untrustworthy response.
    pub fn malformed(source: &'static str, offset: usize, message: impl Into<String>) -> PageError {
        PageError::new(FaultKind::Malformed, source, offset, message)
    }

    /// A simulated process death from a tripped [`KillSwitch`].
    pub fn killed(source: &'static str, offset: usize, after_n_pages: u64) -> PageError {
        PageError::new(
            FaultKind::Killed { after_n_pages },
            source,
            offset,
            format!("injected process death after {after_n_pages} served pages"),
        )
    }
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} page at offset {} failed ({}): {}",
            self.source,
            self.offset,
            self.kind.label(),
            self.message
        )
    }
}

impl std::error::Error for PageError {}

/// A paged query endpoint with a stable item order.
///
/// Offsets are item cursors (not page numbers): `fetch(offset, limit)`
/// returns up to `limit` items starting at the `offset`-th item of the
/// stable ordering. Endpoints may return fewer than `limit` items (server
/// page caps); callers advance the cursor by the number of items actually
/// returned. Implementations must be cheap to query concurrently — the
/// sharded crawler calls `fetch` from multiple threads.
pub trait PagedSource {
    /// The item type this source serves.
    type Item;

    /// A short stable name for reports and errors ("subgraph", "txlist",
    /// "market").
    fn source_name(&self) -> &'static str;

    /// Total number of items, if the endpoint exposes it cheaply. Sources
    /// that report a total can be sharded by page range across threads;
    /// sources that don't are drained through a sequential cursor walk.
    fn total_hint(&self) -> Option<usize>;

    /// Fetches up to `limit` items starting at item `offset`.
    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError>;
}

impl<S: PagedSource> PagedSource for &S {
    type Item = S::Item;
    fn source_name(&self) -> &'static str {
        (**self).source_name()
    }
    fn total_hint(&self) -> Option<usize> {
        (**self).total_hint()
    }
    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError> {
        (**self).fetch(offset, limit)
    }
}

/// A key that can be assigned to a crawl shard. The hash must be stable
/// across runs and platforms (it feeds deterministic work division, never
/// a `HashMap`).
pub trait ShardKey {
    /// A stable 64-bit hash of the key.
    fn shard_hash(&self) -> u64;
}

impl ShardKey for Address {
    fn shard_hash(&self) -> u64 {
        // FNV-1a over the address bytes: stable, cheap, well-mixed enough
        // to balance txlist shards.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// FNV-1a over a byte string (stable across runs/platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer: turns a structured input into a well-mixed word.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One million — fault probabilities are expressed in parts per million so
/// profiles stay integral (and therefore `Eq` and exactly serializable).
pub const PPM: u32 = 1_000_000;

/// A deterministic fault injection plan for one source. All decisions are
/// pure functions of `(seed, offset)`, so the same profile produces the
/// same faults at the same offsets regardless of thread count, retry
/// interleaving, or wall-clock — chaos runs are byte-reproducible.
///
/// Probabilities are per *offset* in parts per million ([`PPM`]); at a
/// selected offset the fault repeats for `*_burst` consecutive attempts
/// (rate-limit bursts, timeout clusters) before the endpoint recovers.
/// `holes` are offset ranges that fail permanently on every attempt.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Seed for every per-offset decision.
    pub seed: u64,
    /// Probability (ppm) that an offset hits a rate limit.
    pub rate_limited_ppm: u32,
    /// Consecutive rate-limited attempts at a selected offset.
    pub rate_limit_burst: u32,
    /// The `retry_after` the simulated throttle asks for.
    pub retry_after_ms: u64,
    /// Probability (ppm) that an offset times out.
    pub timeout_ppm: u32,
    /// Consecutive timeouts at a selected offset (a timeout cluster).
    pub timeout_burst: u32,
    /// Probability (ppm) of a transient 5xx.
    pub server_error_ppm: u32,
    /// Consecutive 5xx responses at a selected offset.
    pub server_error_burst: u32,
    /// Probability (ppm) that a page comes back short/truncated (lossless:
    /// the cursor walk re-fetches the remainder, it just costs more pages).
    pub truncate_ppm: u32,
    /// Probability (ppm) that the endpoint over-delivers — returns more
    /// items than the requested limit, which the crawler must classify as
    /// [`FaultKind::Malformed`] instead of corrupting its shard merge.
    pub oversize_ppm: u32,
    /// Offset ranges `[start, end)` that permanently fail every request
    /// touching them.
    pub holes: Vec<(usize, usize)>,
}

impl FaultProfile {
    /// A fault-free profile with the given seed.
    pub fn new(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            ..FaultProfile::default()
        }
    }

    /// Adds rate-limit bursts.
    pub fn with_rate_limits(mut self, ppm: u32, burst: u32, retry_after_ms: u64) -> FaultProfile {
        self.rate_limited_ppm = ppm;
        self.rate_limit_burst = burst;
        self.retry_after_ms = retry_after_ms;
        self
    }

    /// Adds timeout clusters.
    pub fn with_timeouts(mut self, ppm: u32, burst: u32) -> FaultProfile {
        self.timeout_ppm = ppm;
        self.timeout_burst = burst;
        self
    }

    /// Adds transient server errors.
    pub fn with_server_errors(mut self, ppm: u32, burst: u32) -> FaultProfile {
        self.server_error_ppm = ppm;
        self.server_error_burst = burst;
        self
    }

    /// Adds short/truncated pages.
    pub fn with_truncation(mut self, ppm: u32) -> FaultProfile {
        self.truncate_ppm = ppm;
        self
    }

    /// Adds over-delivering (malformed) pages.
    pub fn with_oversize(mut self, ppm: u32) -> FaultProfile {
        self.oversize_ppm = ppm;
        self
    }

    /// Adds a permanent hole over `[start, end)`.
    pub fn with_hole(mut self, start: usize, end: usize) -> FaultProfile {
        self.holes.push((start, end));
        self
    }

    /// A named profile for the CLI's `--chaos` flag. Bursts stay within the
    /// default retry budget (3) except where the point is to exhaust it.
    ///
    /// Known names: `none`, `flaky`, `rate-limit-storm`, `timeouts`,
    /// `holes`, `mixed`.
    pub fn named(name: &str, seed: u64) -> Option<FaultProfile> {
        Some(match name {
            "none" => FaultProfile::new(seed),
            "flaky" => FaultProfile::new(seed).with_server_errors(150_000, 2),
            "rate-limit-storm" => FaultProfile::new(seed).with_rate_limits(400_000, 3, 750),
            "timeouts" => FaultProfile::new(seed).with_timeouts(250_000, 2),
            "holes" => FaultProfile::new(seed)
                .with_hole(48, 80)
                .with_hole(512, 560)
                .with_server_errors(50_000, 1),
            "mixed" => FaultProfile::new(seed)
                .with_rate_limits(150_000, 2, 500)
                .with_timeouts(100_000, 2)
                .with_server_errors(100_000, 1)
                .with_truncation(100_000)
                .with_hole(100, 140),
            _ => return None,
        })
    }

    /// The names [`FaultProfile::named`] accepts, for usage messages.
    pub const NAMED: &'static [&'static str] = &[
        "none",
        "flaky",
        "rate-limit-storm",
        "timeouts",
        "holes",
        "mixed",
    ];

    /// This profile re-seeded for a named source, so wrapped sources do not
    /// fault in lockstep at the same offsets.
    pub fn derive(&self, tag: &str) -> FaultProfile {
        FaultProfile {
            seed: mix64(self.seed ^ fnv1a(tag.as_bytes())),
            ..self.clone()
        }
    }

    /// [`FaultProfile::derive`] further specialized by a shard-key hash —
    /// one independent fault stream per keyed source (per address).
    pub fn derive_keyed(&self, tag: &str, key_hash: u64) -> FaultProfile {
        FaultProfile {
            seed: mix64(self.seed ^ fnv1a(tag.as_bytes()) ^ key_hash.rotate_left(17)),
            ..self.clone()
        }
    }

    /// The hole covering any part of `[offset, offset + limit)`, if one
    /// exists.
    fn hole_over(&self, offset: usize, limit: usize) -> Option<(usize, usize)> {
        let end = offset.saturating_add(limit);
        self.holes
            .iter()
            .copied()
            .find(|&(lo, hi)| offset < hi && end > lo)
    }

    /// The per-offset decision bucket in `[0, PPM)`.
    fn bucket(&self, offset: usize) -> u32 {
        (mix64(self.seed ^ (offset as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % u64::from(PPM))
            as u32
    }

    /// The transient fault (kind + burst length) injected at `offset`, if
    /// any. Exactly one category can be selected per offset.
    fn transient_at(&self, offset: usize) -> Option<(FaultKind, u32)> {
        let b = self.bucket(offset);
        let mut acc = self.rate_limited_ppm;
        if b < acc {
            return Some((
                FaultKind::RateLimited {
                    retry_after_ms: self.retry_after_ms,
                },
                self.rate_limit_burst,
            ));
        }
        acc += self.timeout_ppm;
        if b < acc {
            return Some((FaultKind::Timeout, self.timeout_burst));
        }
        acc += self.server_error_ppm;
        if b < acc {
            return Some((FaultKind::ServerError, self.server_error_burst));
        }
        None
    }

    /// True if the page at `offset` comes back truncated.
    fn truncates_at(&self, offset: usize) -> bool {
        let b = self.bucket(offset);
        let lo = self.rate_limited_ppm + self.timeout_ppm + self.server_error_ppm;
        b >= lo && b < lo + self.truncate_ppm
    }

    /// True if the page at `offset` over-delivers.
    fn oversizes_at(&self, offset: usize) -> bool {
        let b = self.bucket(offset);
        let lo =
            self.rate_limited_ppm + self.timeout_ppm + self.server_error_ppm + self.truncate_ppm;
        b >= lo && b < lo + self.oversize_ppm
    }
}

/// A process-wide page budget simulating crash death mid-crawl: after
/// `after_n_pages` pages have been served (across *every* source sharing
/// the switch), each subsequent fetch fails with [`FaultKind::Killed`].
///
/// One switch is shared by all of a collection's wrapped sources, because a
/// process death is global — it does not respect source boundaries. At one
/// worker thread the kill lands after exactly `after_n_pages` pages; under
/// concurrency a handful of in-flight fetches may still land after the
/// budget is spent (just like real crashes, which are not synchronized with
/// page boundaries either).
#[derive(Debug)]
pub struct KillSwitch {
    after_n_pages: u64,
    served: AtomicU64,
}

impl KillSwitch {
    /// A switch that trips after `after_n_pages` successfully served pages.
    pub fn new(after_n_pages: u64) -> Arc<KillSwitch> {
        Arc::new(KillSwitch {
            after_n_pages,
            served: AtomicU64::new(0),
        })
    }

    /// The page budget this switch was armed with.
    pub fn after_n_pages(&self) -> u64 {
        self.after_n_pages
    }

    /// Pages served so far across all sources sharing the switch.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// True once the budget is exhausted — every fetch from here on dies.
    pub fn tripped(&self) -> bool {
        self.served() >= self.after_n_pages
    }

    /// Records one successfully served page.
    fn record_page(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }
}

/// A chaos wrapper injecting the faults of a [`FaultProfile`] into any
/// [`PagedSource`]. Deterministic under any thread interleaving: fault
/// selection is a pure function of `(seed, offset)` and burst exhaustion is
/// tracked per offset, never globally.
pub struct ChaosSource<S> {
    inner: S,
    profile: FaultProfile,
    attempts: Mutex<HashMap<usize, u32>>,
    kill: Option<Arc<KillSwitch>>,
}

impl<S> ChaosSource<S> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: S, profile: FaultProfile) -> ChaosSource<S> {
        ChaosSource {
            inner,
            profile,
            attempts: Mutex::new(HashMap::new()),
            kill: None,
        }
    }

    /// Wraps `inner` with a fault plan plus an optional shared kill switch.
    /// Pass the same `Arc` to every source of a collection so the simulated
    /// process death is global, like the real thing.
    pub fn with_kill_switch(
        inner: S,
        profile: FaultProfile,
        kill: Option<Arc<KillSwitch>>,
    ) -> ChaosSource<S> {
        ChaosSource {
            inner,
            profile,
            attempts: Mutex::new(HashMap::new()),
            kill,
        }
    }

    /// The wrapped profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }
}

impl<S: PagedSource> PagedSource for ChaosSource<S> {
    type Item = S::Item;

    fn source_name(&self) -> &'static str {
        self.inner.source_name()
    }

    fn total_hint(&self) -> Option<usize> {
        self.inner.total_hint()
    }

    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError> {
        let name = self.inner.source_name();
        if let Some(kill) = &self.kill {
            if kill.tripped() {
                return Err(PageError::killed(name, offset, kill.after_n_pages()));
            }
        }
        if let Some((lo, hi)) = self.profile.hole_over(offset, limit) {
            return Err(PageError::permanent_hole(
                name,
                offset,
                format!("injected permanent hole over offsets {lo}..{hi}"),
            ));
        }
        if let Some((kind, burst)) = self.profile.transient_at(offset) {
            let mut attempts = self.attempts.lock().expect("attempt log poisoned");
            let n = attempts.entry(offset).or_insert(0);
            if *n < burst {
                *n = n.saturating_add(1);
                let msg = format!("injected {} (attempt {n} of burst {burst})", kind.label());
                return Err(PageError::new(kind, name, offset, msg));
            }
        }
        if self.profile.oversizes_at(offset) {
            // A misbehaving endpoint that over-delivers: hand back more
            // genuine items than the caller asked for (when available) and
            // let the crawler's limit check catch the corruption.
            let batch = self
                .inner
                .fetch(offset, limit.saturating_mul(2).max(limit + 1))?;
            if let Some(kill) = &self.kill {
                kill.record_page();
            }
            return Ok(batch);
        }
        let mut batch = self.inner.fetch(offset, limit)?;
        if self.profile.truncates_at(offset) && batch.items.len() > 1 {
            // Short page: drop the tail; the dropped items remain fetchable
            // at later offsets, so this is lossless but costs extra pages.
            batch.items.truncate(batch.items.len() / 2);
            batch.has_more = true;
        }
        if let Some(kill) = &self.kill {
            kill.record_page();
        }
        Ok(batch)
    }
}

/// The original, simplest chaos wrapper, kept for existing tests: fails the
/// first `fail_attempts` fetches at every offset with a transient server
/// error, then delegates. Implemented as an always-on [`ChaosSource`].
pub struct FlakySource<S>(ChaosSource<S>);

impl<S> FlakySource<S> {
    /// Wraps `inner` so every offset fails its first `fail_attempts`
    /// fetches before succeeding.
    pub fn new(inner: S, fail_attempts: u32) -> FlakySource<S> {
        FlakySource(ChaosSource::new(
            inner,
            FaultProfile::new(0).with_server_errors(PPM, fail_attempts),
        ))
    }
}

impl<S: PagedSource> PagedSource for FlakySource<S> {
    type Item = S::Item;

    fn source_name(&self) -> &'static str {
        self.0.source_name()
    }

    fn total_hint(&self) -> Option<usize> {
        self.0.total_hint()
    }

    fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<Self::Item>, PageError> {
        self.0.fetch(offset, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Numbers(usize);

    impl PagedSource for Numbers {
        type Item = usize;
        fn source_name(&self) -> &'static str {
            "numbers"
        }
        fn total_hint(&self) -> Option<usize> {
            Some(self.0)
        }
        fn fetch(&self, offset: usize, limit: usize) -> Result<PagedBatch<usize>, PageError> {
            let end = (offset + limit).min(self.0);
            Ok(PagedBatch {
                items: (offset..end).collect(),
                has_more: end < self.0,
            })
        }
    }

    #[test]
    fn flaky_source_fails_then_recovers_per_offset() {
        let flaky = FlakySource::new(Numbers(10), 2);
        assert!(flaky.fetch(0, 5).is_err());
        assert!(flaky.fetch(0, 5).is_err());
        let batch = flaky.fetch(0, 5).expect("third attempt succeeds");
        assert_eq!(batch.items, vec![0, 1, 2, 3, 4]);
        assert!(batch.has_more);
        // A different offset starts its own failure budget.
        assert!(flaky.fetch(5, 5).is_err());
    }

    #[test]
    fn flaky_errors_are_typed_server_errors() {
        let flaky = FlakySource::new(Numbers(10), 1);
        let err = flaky.fetch(0, 5).unwrap_err();
        assert_eq!(err.kind, FaultKind::ServerError);
        assert!(err.kind.is_retryable());
    }

    #[test]
    fn shard_hash_is_stable_and_spread() {
        let a = Address::derive(b"a").shard_hash();
        let b = Address::derive(b"b").shard_hash();
        assert_ne!(a, b);
        assert_eq!(a, Address::derive(b"a").shard_hash(), "stable across calls");
    }

    #[test]
    fn holes_fail_permanently_and_report_the_range() {
        let chaos = ChaosSource::new(Numbers(100), FaultProfile::new(7).with_hole(10, 20));
        // Any request touching the hole fails, forever.
        for _ in 0..5 {
            let err = chaos.fetch(15, 5).unwrap_err();
            assert_eq!(err.kind, FaultKind::PermanentHole);
            assert!(!err.kind.is_retryable());
        }
        // Overlap from below also fails; disjoint requests succeed.
        assert!(chaos.fetch(5, 6).is_err());
        assert!(chaos.fetch(20, 5).is_ok());
        assert!(chaos.fetch(0, 10).is_ok());
    }

    #[test]
    fn rate_limit_bursts_carry_retry_after_and_clear() {
        let profile = FaultProfile::new(3).with_rate_limits(PPM, 2, 1234);
        let chaos = ChaosSource::new(Numbers(10), profile);
        for _ in 0..2 {
            let err = chaos.fetch(0, 5).unwrap_err();
            assert_eq!(err.kind.retry_after_ms(), Some(1234));
        }
        assert!(
            chaos.fetch(0, 5).is_ok(),
            "burst exhausted, endpoint recovers"
        );
    }

    #[test]
    fn truncated_pages_are_short_but_lossless() {
        let profile = FaultProfile::new(11).with_truncation(PPM);
        let chaos = ChaosSource::new(Numbers(10), profile);
        let batch = chaos.fetch(0, 8).unwrap();
        assert_eq!(batch.items, vec![0, 1, 2, 3]);
        assert!(batch.has_more, "truncation must not end the cursor walk");
        // The dropped tail is still fetchable at its own offset.
        let rest = chaos.fetch(4, 2).unwrap();
        assert_eq!(rest.items[0], 4);
    }

    #[test]
    fn oversized_pages_exceed_the_requested_limit() {
        let profile = FaultProfile::new(1).with_oversize(PPM);
        let chaos = ChaosSource::new(Numbers(100), profile);
        let batch = chaos.fetch(0, 5).unwrap();
        assert!(batch.items.len() > 5, "endpoint over-delivers");
    }

    #[test]
    fn fault_decisions_are_deterministic_per_offset() {
        let make = || {
            ChaosSource::new(
                Numbers(1000),
                FaultProfile::new(99)
                    .with_rate_limits(200_000, 1, 10)
                    .with_timeouts(200_000, 1)
                    .with_server_errors(200_000, 1),
            )
        };
        let a = make();
        let b = make();
        for offset in (0..1000).step_by(13) {
            let ra = a.fetch(offset, 13).map_err(|e| e.kind);
            let rb = b.fetch(offset, 13).map_err(|e| e.kind);
            assert_eq!(ra.is_ok(), rb.is_ok(), "offset {offset}");
            if let (Err(ka), Err(kb)) = (ra, rb) {
                assert_eq!(ka, kb, "offset {offset}");
            }
        }
    }

    #[test]
    fn derived_profiles_differ_per_source_and_key() {
        let base = FaultProfile::new(42).with_timeouts(500_000, 1);
        let a = base.derive("subgraph");
        let b = base.derive("market");
        assert_ne!(a.seed, b.seed);
        assert_ne!(
            base.derive_keyed("txlist", 1).seed,
            base.derive_keyed("txlist", 2).seed
        );
        // Re-deriving is stable.
        assert_eq!(a, base.derive("subgraph"));
    }

    #[test]
    fn kill_switch_trips_after_the_page_budget() {
        let kill = KillSwitch::new(3);
        let chaos =
            ChaosSource::with_kill_switch(Numbers(100), FaultProfile::new(0), Some(kill.clone()));
        for i in 0..3 {
            assert!(chaos.fetch(i * 5, 5).is_ok(), "page {i} within budget");
        }
        assert!(kill.tripped());
        let err = chaos.fetch(15, 5).unwrap_err();
        assert_eq!(err.kind, FaultKind::Killed { after_n_pages: 3 });
        assert!(!err.kind.is_retryable(), "a dead process cannot retry");
        assert_eq!(err.kind.label(), "killed");
        // Dead is dead: every subsequent fetch fails too.
        assert!(chaos.fetch(0, 5).is_err());
    }

    #[test]
    fn kill_switch_is_global_across_sources() {
        let kill = KillSwitch::new(2);
        let a =
            ChaosSource::with_kill_switch(Numbers(50), FaultProfile::new(1), Some(kill.clone()));
        let b = ChaosSource::with_kill_switch(Numbers(50), FaultProfile::new(2), Some(kill));
        assert!(a.fetch(0, 5).is_ok());
        assert!(b.fetch(0, 5).is_ok());
        // The budget is shared: the process is dead for *both* sources.
        assert!(a.fetch(5, 5).is_err());
        assert!(b.fetch(5, 5).is_err());
    }

    #[test]
    fn failed_fetches_do_not_consume_the_kill_budget() {
        let kill = KillSwitch::new(1);
        let chaos = ChaosSource::with_kill_switch(
            Numbers(50),
            FaultProfile::new(0).with_hole(10, 20),
            Some(kill.clone()),
        );
        assert!(chaos.fetch(10, 5).is_err(), "hole fails");
        assert_eq!(kill.served(), 0, "a failed page is not a served page");
        assert!(chaos.fetch(0, 5).is_ok());
        assert!(chaos.fetch(20, 5).is_err(), "budget spent, process dies");
    }

    #[test]
    fn named_profiles_resolve_and_unknown_is_rejected() {
        for name in FaultProfile::NAMED {
            assert!(FaultProfile::named(name, 1).is_some(), "{name}");
        }
        assert!(FaultProfile::named("frobnicate", 1).is_none());
    }
}
