//! ENS names: label validation, label hashes, and the recursive namehash.
//!
//! ENS contracts never see human-readable strings — a name like `gold.eth`
//! lives on chain as `namehash("gold.eth")` and its registration token as
//! `keccak256("gold")`. This module implements both hashes plus the (ENSIP-1
//! inspired, ASCII-subset) normalization rules the simulators enforce.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::hash::{Hash32, LabelHash, NameHash};
use crate::keccak::keccak256;

/// Errors raised while validating an ENS label or name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameError {
    /// The label is empty.
    Empty,
    /// `.eth` second-level labels must be at least 3 characters.
    TooShort(String),
    /// The label contains a character outside `[a-z0-9-_]`.
    InvalidChar(String, char),
    /// A full name did not end in `.eth`.
    NotDotEth(String),
    /// The name contains nested subdomain labels where a 2LD was required.
    NotSecondLevel(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Empty => write!(f, "empty label"),
            NameError::TooShort(l) => write!(f, "label {l:?} is shorter than 3 characters"),
            NameError::InvalidChar(l, c) => write!(f, "label {l:?} contains invalid char {c:?}"),
            NameError::NotDotEth(n) => write!(f, "name {n:?} is not under .eth"),
            NameError::NotSecondLevel(n) => write!(f, "name {n:?} is not a second-level name"),
        }
    }
}

impl std::error::Error for NameError {}

/// Minimum length of a registrable `.eth` label.
pub const MIN_LABEL_LEN: usize = 3;

/// A validated, normalized ENS label (one dot-free component).
///
/// Allowed characters are the ASCII subset `[a-z0-9-_]`; upper-case input is
/// lowered during normalization. (Real ENS allows a much larger Unicode set
/// via ENSIP-15; the paper's lexical features — digits, hyphens,
/// underscores, dictionary words — are all ASCII phenomena, so the ASCII
/// subset preserves the analysis while keeping normalization simple.)
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(String);

impl Label {
    /// Normalizes and validates a label for `.eth` registration
    /// (3-character minimum).
    pub fn parse(s: &str) -> Result<Label, NameError> {
        let label = Self::parse_any(s)?;
        if label.0.len() < MIN_LABEL_LEN {
            return Err(NameError::TooShort(label.0));
        }
        Ok(label)
    }

    /// Normalizes and validates a label without the 3-char minimum (used for
    /// subdomain components).
    pub fn parse_any(s: &str) -> Result<Label, NameError> {
        if s.is_empty() {
            return Err(NameError::Empty);
        }
        let lowered = s.to_ascii_lowercase();
        if let Some(c) = lowered
            .chars()
            .find(|c| !matches!(c, 'a'..='z' | '0'..='9' | '-' | '_'))
        {
            return Err(NameError::InvalidChar(lowered, c));
        }
        Ok(Label(lowered))
    }

    /// The normalized text of the label.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// `keccak256(label)` — the token id of the registration NFT.
    pub fn hash(&self) -> LabelHash {
        LabelHash(Hash32(keccak256(self.0.as_bytes())))
    }

    /// Number of characters (== bytes for this ASCII subset).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false — empty labels cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for Label {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Label::parse(s)
    }
}

/// A validated second-level `.eth` name such as `gold.eth`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EnsName {
    label: Label,
}

impl EnsName {
    /// Parses `"<label>.eth"` (or a bare label) into a second-level name.
    pub fn parse(s: &str) -> Result<EnsName, NameError> {
        let s = s.trim();
        let body = match s.strip_suffix(".eth") {
            Some(body) => body,
            None if s.contains('.') => return Err(NameError::NotDotEth(s.to_string())),
            None => s,
        };
        if body.contains('.') {
            return Err(NameError::NotSecondLevel(s.to_string()));
        }
        Ok(EnsName {
            label: Label::parse(body)?,
        })
    }

    /// Builds from an already-validated label.
    pub fn from_label(label: Label) -> EnsName {
        EnsName { label }
    }

    /// The second-level label (`gold` for `gold.eth`).
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The full name with TLD, e.g. `gold.eth`.
    pub fn to_full(&self) -> String {
        format!("{}.eth", self.label)
    }

    /// The recursive namehash of the full name.
    pub fn namehash(&self) -> NameHash {
        namehash_labels([self.label.as_str(), "eth"])
    }
}

impl fmt::Debug for EnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EnsName({:?})", self.to_full())
    }
}

impl fmt::Display for EnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.eth", self.label)
    }
}

impl std::str::FromStr for EnsName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EnsName::parse(s)
    }
}

/// Computes the ENS namehash of a dot-separated name (ENSIP-1):
/// `namehash("") = 0x00..0`, and
/// `namehash(l "." rest) = keccak256(namehash(rest) || keccak256(l))`.
pub fn namehash(name: &str) -> NameHash {
    if name.is_empty() {
        return NameHash(Hash32::ZERO);
    }
    namehash_labels(name.split('.'))
}

/// Namehash over an iterator of labels ordered left-to-right
/// (`["gold", "eth"]` for `gold.eth`).
pub fn namehash_labels<'a>(labels: impl IntoIterator<Item = &'a str>) -> NameHash {
    let labels: Vec<&str> = labels.into_iter().collect();
    let mut node = [0u8; 32];
    for label in labels.into_iter().rev() {
        let label_hash = keccak256(label.as_bytes());
        let mut buf = [0u8; 64];
        buf[..32].copy_from_slice(&node);
        buf[32..].copy_from_slice(&label_hash);
        node = keccak256(&buf);
    }
    NameHash(Hash32(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namehash_known_vectors() {
        // From ENSIP-1 / EIP-137.
        assert_eq!(namehash("").to_hex(), format!("0x{}", "00".repeat(32)));
        assert_eq!(
            namehash("eth").to_hex(),
            "0x93cdeb708b7545dc668eb9280176169d1c33cfd8ed6f04690a0bcc88a93fc4ae"
        );
        assert_eq!(
            namehash("foo.eth").to_hex(),
            "0xde9b09fd7c5f901e23a3f19fecc54828e9c848539801e86591bd9801b019f84f"
        );
    }

    #[test]
    fn ens_name_namehash_matches_generic_namehash() {
        let name = EnsName::parse("gold.eth").unwrap();
        assert_eq!(name.namehash(), namehash("gold.eth"));
    }

    #[test]
    fn parse_accepts_bare_label_and_full_name() {
        assert_eq!(
            EnsName::parse("gold").unwrap(),
            EnsName::parse("gold.eth").unwrap()
        );
        assert_eq!(EnsName::parse("GOLD.eth").unwrap().to_full(), "gold.eth");
    }

    #[test]
    fn parse_rejects_invalid() {
        assert!(matches!(
            EnsName::parse("ab.eth"),
            Err(NameError::TooShort(_))
        ));
        assert!(matches!(
            EnsName::parse("has space.eth"),
            Err(NameError::InvalidChar(..))
        ));
        assert!(matches!(
            EnsName::parse("gold.com"),
            Err(NameError::NotDotEth(_))
        ));
        assert!(matches!(
            EnsName::parse("sub.gold.eth"),
            Err(NameError::NotSecondLevel(_))
        ));
        assert!(matches!(EnsName::parse(""), Err(NameError::Empty)));
    }

    #[test]
    fn labels_allow_paper_feature_characters() {
        // Digits, hyphens and underscores appear as lexical features in
        // Table 1, so they must be registrable.
        for l in ["000", "a-b", "a_b", "x2y", "crypto-whale_99"] {
            assert!(Label::parse(l).is_ok(), "{l} should parse");
        }
    }

    #[test]
    fn label_hash_is_keccak_of_text() {
        let l = Label::parse("eth-like").unwrap();
        assert_eq!(l.hash().0 .0, keccak256(b"eth-like"));
    }

    #[test]
    fn subdomain_labels_can_be_short() {
        assert!(Label::parse_any("a").is_ok());
        assert!(Label::parse("a").is_err());
    }
}
