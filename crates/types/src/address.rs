//! Ethereum account addresses.

use std::fmt;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::keccak::keccak256;

/// A 20-byte Ethereum address.
///
/// Addresses are the join key of the whole study: ENS domains resolve to
/// addresses, transactions move value between addresses, and the financial
/// loss heuristic of the paper's §4.4 is a pattern over (sender, receiver)
/// address pairs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub [u8; 20]);

impl Serialize for Address {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for Address {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Address::from_hex(&s).ok_or_else(|| serde::de::Error::custom("invalid 20-byte hex"))
    }
}

impl Address {
    /// The zero address (used as "nobody" / burn).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Deterministically derives an address from a seed — the simulators use
    /// this instead of real key generation, keccak-hashing the seed exactly
    /// like Ethereum derives addresses from public keys (last 20 bytes).
    pub fn derive(seed: &[u8]) -> Address {
        let h = keccak256(seed);
        let mut out = [0u8; 20];
        out.copy_from_slice(&h[12..]);
        Address(out)
    }

    /// Derives the `n`-th address in a named family, e.g. `("sender", 42)`.
    pub fn derive_indexed(family: &str, n: u64) -> Address {
        let mut seed = Vec::with_capacity(family.len() + 9);
        seed.extend_from_slice(family.as_bytes());
        seed.push(b'/');
        seed.extend_from_slice(&n.to_be_bytes());
        Address::derive(&seed)
    }

    /// Lower-case hex with `0x` prefix (no EIP-55 checksum).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(42);
        s.push_str("0x");
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to string cannot fail");
        }
        s
    }

    /// EIP-55 mixed-case checksum encoding.
    pub fn to_checksum_hex(self) -> String {
        let lower: String = self.to_hex()[2..].to_string();
        let digest = keccak256(lower.as_bytes());
        let mut out = String::with_capacity(42);
        out.push_str("0x");
        for (i, c) in lower.chars().enumerate() {
            let nibble = (digest[i / 2] >> (4 * (1 - i % 2))) & 0x0f;
            if c.is_ascii_alphabetic() && nibble >= 8 {
                out.push(c.to_ascii_uppercase());
            } else {
                out.push(c);
            }
        }
        out
    }

    /// Parses a `0x`-prefixed (or bare) 40-digit hex string, case-insensitive.
    pub fn from_hex(s: &str) -> Option<Address> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != 40 {
            return None;
        }
        let mut out = [0u8; 20];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Address(out))
    }

    /// True for the zero address.
    pub fn is_zero(self) -> bool {
        self == Address::ZERO
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self.to_hex())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let a = Address::derive(b"alice");
        let b = Address::derive(b"alice");
        let c = Address::derive(b"bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_zero());
    }

    #[test]
    fn derive_indexed_distinguishes_family_and_index() {
        assert_ne!(
            Address::derive_indexed("sender", 1),
            Address::derive_indexed("sender", 2)
        );
        assert_ne!(
            Address::derive_indexed("sender", 1),
            Address::derive_indexed("owner", 1)
        );
        // The separator prevents ("ab", 1) from colliding with ("a", ...)
        // style ambiguity.
        assert_ne!(
            Address::derive_indexed("ab", 0x2f01),
            Address::derive_indexed("ab/", 0x01)
        );
    }

    #[test]
    fn hex_round_trip() {
        let a = Address::derive(b"round-trip");
        assert_eq!(Address::from_hex(&a.to_hex()), Some(a));
        assert_eq!(Address::from_hex(&a.to_checksum_hex()), Some(a));
    }

    #[test]
    fn eip55_known_vector() {
        // Vector from EIP-55.
        let a = Address::from_hex("0x5aaeb6053f3e94c9b9a09f33669435e7ef1beaed").unwrap();
        assert_eq!(
            a.to_checksum_hex(),
            "0x5aAeb6053F3E94C9b9A09f33669435E7Ef1BeAed"
        );
    }

    #[test]
    fn from_hex_rejects_bad_lengths() {
        assert_eq!(Address::from_hex("0x1234"), None);
        assert_eq!(Address::from_hex(&"0".repeat(41)), None);
    }
}
