//! Fixed-size hash newtypes shared across the workspace.

use std::fmt;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A 32-byte hash value (keccak-256 output).
///
/// Serializes as a `0x`-prefixed hex string so it can be used as a JSON
/// map key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash32(pub [u8; 32]);

impl Serialize for Hash32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for Hash32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Hash32::from_hex(&s).ok_or_else(|| serde::de::Error::custom("invalid 32-byte hex"))
    }
}

impl Hash32 {
    /// The all-zero hash, used by ENS as the root node.
    pub const ZERO: Hash32 = Hash32([0u8; 32]);

    /// Lower-case hex with `0x` prefix.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(66);
        s.push_str("0x");
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("writing to string cannot fail");
        }
        s
    }

    /// Parses a `0x`-prefixed (or bare) 64-digit hex string.
    pub fn from_hex(s: &str) -> Option<Hash32> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Hash32(out))
    }

    /// The first 8 bytes interpreted as a big-endian integer — handy for
    /// deterministic pseudo-random derivations in the simulators.
    pub fn prefix_u64(self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice is 8 bytes"))
    }
}

impl fmt::Debug for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash32({})", self.to_hex())
    }
}

impl fmt::Display for Hash32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<[u8; 32]> for Hash32 {
    fn from(v: [u8; 32]) -> Self {
        Hash32(v)
    }
}

macro_rules! hash_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub Hash32);

        impl $name {
            /// Lower-case hex with `0x` prefix.
            pub fn to_hex(self) -> String {
                self.0.to_hex()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0.to_hex())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&self.0, f)
            }
        }

        impl From<Hash32> for $name {
            fn from(h: Hash32) -> Self {
                $name(h)
            }
        }
    };
}

hash_newtype! {
    /// keccak-256 of a single label, e.g. `keccak256("gold")`.
    LabelHash
}

hash_newtype! {
    /// The recursive ENS namehash of a full name, e.g. `namehash("gold.eth")`.
    NameHash
}

hash_newtype! {
    /// An Ethereum transaction hash.
    TxHash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let mut bytes = [0u8; 32];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let h = Hash32(bytes);
        assert_eq!(Hash32::from_hex(&h.to_hex()), Some(h));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash32::from_hex("0x1234"), None);
        assert_eq!(Hash32::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn from_hex_accepts_bare_hex() {
        let h = Hash32([0xab; 32]);
        let bare = h.to_hex().trim_start_matches("0x").to_string();
        assert_eq!(Hash32::from_hex(&bare), Some(h));
    }

    #[test]
    fn zero_is_root_node() {
        assert_eq!(Hash32::ZERO.to_hex(), format!("0x{}", "00".repeat(32)));
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[7] = 1;
        assert_eq!(Hash32(bytes).prefix_u64(), 1);
        bytes[0] = 1;
        assert_eq!(Hash32(bytes).prefix_u64(), (1 << 56) + 1);
    }
}
