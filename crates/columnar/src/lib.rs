//! # ens-columnar
//!
//! The compact binary container format behind the native on-disk `Dataset`
//! form: a sectioned struct-of-arrays file with interned strings and
//! fixed-width little-endian numeric columns. This crate is the *format
//! engine* — framing, checksums, typed column cursors, intern tables — and
//! knows nothing about datasets; the schema binding (which sections exist
//! and what columns they carry) lives with the types being stored.
//!
//! ## File layout (version 1)
//!
//! ```text
//! offset 0   magic  "ENSC"                          4 bytes
//! offset 4   format version                         u32 LE
//! offset 8   section count                          u32 LE
//! offset 12  directory, one entry per section:
//!              section id                           u32 LE
//!              payload offset (absolute)            u64 LE
//!              payload length                       u64 LE
//!              payload checksum64                   u64 LE
//! then       directory checksum64 (of everything above)   u64 LE
//! then       section payloads, concatenated in directory order
//! ```
//!
//! Every section payload is independently checksummed, so a truncated or
//! bit-flipped file fails [`FileView::parse`] with a typed error instead of
//! decoding into garbage. The magic is deliberately distinguishable from
//! JSON (which starts with `{` after optional whitespace), making format
//! auto-detection a two-byte sniff.
//!
//! ## Columns
//!
//! Sections are built with the [`PutLe`] writer extension and read back
//! with a bounds-checked [`Cursor`]. Within a section, encoders are
//! expected to lay fields out *column-wise* (all values of field A, then
//! all of field B), which is what makes decoding a sequence of bulk,
//! branch-free copies. Booleans pack into bitmaps ([`push_bits`] /
//! [`Cursor::take_bits`]); optional references use the [`NONE_ID`]
//! sentinel.
//!
//! ## Interning
//!
//! [`StrTable`] and [`BytesTable`] deduplicate repeated values (names,
//! 20-byte addresses) into id-indexed pools, so a column of owners is a
//! `u32` column plus one shared table. Both report hit counts for
//! observability.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// Magic bytes opening every columnar file.
pub const MAGIC: [u8; 4] = *b"ENSC";

/// Current format version.
pub const VERSION: u32 = 1;

/// Sentinel id meaning "absent" in optional id columns.
pub const NONE_ID: u32 = u32::MAX;

/// Bytes of one directory entry: id (4) + offset (8) + len (8) + checksum (8).
const DIR_ENTRY_BYTES: usize = 28;

/// Bytes before the directory: magic (4) + version (4) + section count (4).
const PREAMBLE_BYTES: usize = 12;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a columnar file failed to parse or decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ColumnarError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is newer than this reader understands.
    UnsupportedVersion(u32),
    /// A read ran past the end of its buffer.
    Truncated {
        /// What was being read.
        context: &'static str,
        /// Bytes the read needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A section payload's checksum does not match the directory.
    ChecksumMismatch {
        /// The failing section's id.
        section: u32,
    },
    /// The header/directory checksum does not match.
    DirectoryChecksumMismatch,
    /// A section the schema requires is absent.
    MissingSection(u32),
    /// The directory lists the same section id twice.
    DuplicateSection(u32),
    /// A value inside a section is inconsistent (bad intern id, invalid
    /// UTF-8, trailing bytes, overlapping payloads, ...).
    Corrupt(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::BadMagic => write!(f, "not a columnar file (bad magic)"),
            ColumnarError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported columnar format version {v} (reader: {VERSION})"
                )
            }
            ColumnarError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated while reading {context}: needed {needed} bytes, had {available}"
            ),
            ColumnarError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            ColumnarError::DirectoryChecksumMismatch => {
                write!(f, "header directory checksum mismatch")
            }
            ColumnarError::MissingSection(id) => write!(f, "required section {id} is missing"),
            ColumnarError::DuplicateSection(id) => write!(f, "section {id} appears twice"),
            ColumnarError::Corrupt(what) => write!(f, "corrupt columnar data: {what}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

/// Convenience alias for fallible columnar operations.
pub type Result<T> = std::result::Result<T, ColumnarError>;

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// A word-at-a-time FNV-1a variant: the 64-bit FNV constants applied to
/// little-endian 8-byte words (zero-padded tail), with the input length
/// folded into the seed so payloads differing only in trailing zero bytes
/// hash apart. Not cryptographic — an integrity check against truncation
/// and bit rot, chosen for GB/s-range throughput over byte-serial FNV.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = (OFFSET ^ bytes.len() as u64).wrapping_mul(PRIME);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

/// Little-endian append helpers for building section payloads in a
/// `Vec<u8>`.
pub trait PutLe {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u32`, little-endian.
    fn put_u32(&mut self, v: u32);
    /// Appends a `u64`, little-endian.
    fn put_u64(&mut self, v: u64);
    /// Appends a `u128`, little-endian.
    fn put_u128(&mut self, v: u128);
    /// Appends raw bytes.
    fn put_bytes(&mut self, b: &[u8]);
}

impl PutLe for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u128(&mut self, v: u128) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_bytes(&mut self, b: &[u8]) {
        self.extend_from_slice(b);
    }
}

/// Packs a bool column into a bitmap (LSB-first within each byte) and
/// appends it. The reader recovers it with [`Cursor::take_bits`] given the
/// same bit count — no length prefix is written.
pub fn push_bits(buf: &mut Vec<u8>, bits: &[bool]) {
    let mut byte = 0u8;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        buf.push(byte);
    }
}

/// Accumulates sections and frames them into a columnar file.
#[derive(Default)]
pub struct FileBuilder {
    sections: Vec<(u32, Vec<u8>)>,
}

impl FileBuilder {
    /// An empty builder for a version-[`VERSION`] file.
    pub fn new() -> FileBuilder {
        FileBuilder::default()
    }

    /// Adds a section. Ids must be unique; order is preserved in the file.
    ///
    /// # Panics
    ///
    /// Panics if `id` was already added (a schema bug, not input data).
    pub fn add(&mut self, id: u32, payload: Vec<u8>) {
        assert!(
            self.sections.iter().all(|(existing, _)| *existing != id),
            "section {id} added twice"
        );
        self.sections.push((id, payload));
    }

    /// Frames the accumulated sections into the final file bytes.
    pub fn finish(self) -> Vec<u8> {
        let dir_bytes = self.sections.len() * DIR_ENTRY_BYTES;
        let payload_start = PREAMBLE_BYTES + dir_bytes + 8; // + directory checksum
        let total: usize =
            payload_start + self.sections.iter().map(|(_, p)| p.len()).sum::<usize>();

        let mut out = Vec::with_capacity(total);
        out.put_bytes(&MAGIC);
        out.put_u32(VERSION);
        out.put_u32(self.sections.len() as u32);
        let mut offset = payload_start as u64;
        for (id, payload) in &self.sections {
            out.put_u32(*id);
            out.put_u64(offset);
            out.put_u64(payload.len() as u64);
            out.put_u64(checksum64(payload));
            offset += payload.len() as u64;
        }
        let dir_checksum = checksum64(&out);
        out.put_u64(dir_checksum);
        for (_, payload) in &self.sections {
            out.put_bytes(payload);
        }
        debug_assert_eq!(out.len(), total);
        out
    }
}

/// A parsed, checksum-verified view over a columnar file's sections.
#[derive(Debug)]
pub struct FileView<'a> {
    version: u32,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> FileView<'a> {
    /// Parses and fully verifies a file: magic, version, directory bounds,
    /// the directory checksum, and every section's payload checksum.
    pub fn parse(bytes: &'a [u8]) -> Result<FileView<'a>> {
        if bytes.len() < PREAMBLE_BYTES || bytes[..4] != MAGIC {
            return Err(ColumnarError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(ColumnarError::UnsupportedVersion(version));
        }
        let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let dir_end = PREAMBLE_BYTES + count * DIR_ENTRY_BYTES;
        if bytes.len() < dir_end + 8 {
            return Err(ColumnarError::Truncated {
                context: "section directory",
                needed: dir_end + 8,
                available: bytes.len(),
            });
        }
        let stored_dir_checksum =
            u64::from_le_bytes(bytes[dir_end..dir_end + 8].try_into().expect("8 bytes"));
        if checksum64(&bytes[..dir_end]) != stored_dir_checksum {
            return Err(ColumnarError::DirectoryChecksumMismatch);
        }

        let mut sections = Vec::with_capacity(count);
        let mut cursor = Cursor::new(&bytes[PREAMBLE_BYTES..dir_end], "section directory");
        for _ in 0..count {
            let id = cursor.take_u32()?;
            let offset = cursor.take_u64()? as usize;
            let len = cursor.take_u64()? as usize;
            let stored = cursor.take_u64()?;
            let end = offset.checked_add(len).ok_or(ColumnarError::Truncated {
                context: "section payload",
                needed: usize::MAX,
                available: bytes.len(),
            })?;
            if end > bytes.len() {
                return Err(ColumnarError::Truncated {
                    context: "section payload",
                    needed: end,
                    available: bytes.len(),
                });
            }
            if sections.iter().any(|(existing, _)| *existing == id) {
                return Err(ColumnarError::DuplicateSection(id));
            }
            let payload = &bytes[offset..end];
            if checksum64(payload) != stored {
                return Err(ColumnarError::ChecksumMismatch { section: id });
            }
            sections.push((id, payload));
        }
        Ok(FileView { version, sections })
    }

    /// The file's format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Number of sections in the file.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// The payload of section `id`, or [`ColumnarError::MissingSection`].
    pub fn section(&self, id: u32) -> Result<&'a [u8]> {
        self.sections
            .iter()
            .find(|(existing, _)| *existing == id)
            .map(|(_, payload)| *payload)
            .ok_or(ColumnarError::MissingSection(id))
    }

    /// `(id, payload length)` for every section, in file order.
    pub fn section_sizes(&self) -> impl Iterator<Item = (u32, usize)> + '_ {
        self.sections.iter().map(|(id, p)| (*id, p.len()))
    }
}

/// True if `bytes` start with the columnar [`MAGIC`] — the cheap sniff
/// format auto-detection uses before committing to a full parse.
pub fn is_columnar(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

/// A bounds-checked, typed reader over one section payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`; `context` names the section in
    /// truncation errors.
    pub fn new(buf: &'a [u8], context: &'static str) -> Cursor<'a> {
        Cursor {
            buf,
            pos: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(ColumnarError::Truncated {
                context: self.context,
                needed: n,
                available: self.buf.len() - self.pos,
            }),
        }
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `u128`.
    pub fn take_u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a `u64` and converts it to `usize`, failing on 32-bit
    /// platforms if it does not fit.
    pub fn take_len(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v)
            .map_err(|_| ColumnarError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Reads `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a whole `u32` column of `n` values.
    pub fn take_u32_vec(&mut self, n: usize) -> Result<Vec<u32>> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| overflow(n))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// Reads a whole `u64` column of `n` values.
    pub fn take_u64_vec(&mut self, n: usize) -> Result<Vec<u64>> {
        let raw = self.take(n.checked_mul(8).ok_or_else(|| overflow(n))?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads a whole `u128` column of `n` values.
    pub fn take_u128_vec(&mut self, n: usize) -> Result<Vec<u128>> {
        let raw = self.take(n.checked_mul(16).ok_or_else(|| overflow(n))?)?;
        Ok(raw
            .chunks_exact(16)
            .map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes")))
            .collect())
    }

    /// Reads a column of `n` fixed-width `[u8; N]` values.
    pub fn take_fixed_vec<const N: usize>(&mut self, n: usize) -> Result<Vec<[u8; N]>> {
        let raw = self.take(n.checked_mul(N).ok_or_else(|| overflow(n))?)?;
        Ok(raw
            .chunks_exact(N)
            .map(|c| {
                let mut out = [0u8; N];
                out.copy_from_slice(c);
                out
            })
            .collect())
    }

    /// Reads a bitmap of `n` bits written by [`push_bits`].
    pub fn take_bits(&mut self, n: usize) -> Result<Bits<'a>> {
        let bytes = self.take(n.div_ceil(8))?;
        Ok(Bits { bytes, len: n })
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the section was consumed exactly — a drifted schema
    /// surfaces as an error, not silently ignored trailing bytes.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(ColumnarError::Corrupt(format!(
                "{}: {} trailing bytes",
                self.context,
                self.remaining()
            )))
        }
    }
}

fn overflow(n: usize) -> ColumnarError {
    ColumnarError::Corrupt(format!("column length {n} overflows"))
}

/// A decoded bitmap column.
pub struct Bits<'a> {
    bytes: &'a [u8],
    len: usize,
}

impl Bits<'_> {
    /// The `i`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (a decoder bug, not input data).
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of {}", self.len);
        self.bytes[i / 8] & (1 << (i % 8)) != 0
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------------
// Intern tables
// ---------------------------------------------------------------------------

/// A build-side string intern table: repeated strings collapse to one id.
#[derive(Default)]
pub struct StrTable {
    ids: HashMap<String, u32>,
    order: Vec<String>,
    lookups: u64,
}

impl StrTable {
    /// An empty table.
    pub fn new() -> StrTable {
        StrTable::default()
    }

    /// The id for `s`, interning it on first sight. Ids are dense and
    /// assigned in first-seen order, so a deterministic traversal produces
    /// a deterministic table.
    pub fn intern(&mut self, s: &str) -> u32 {
        self.lookups += 1;
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = u32::try_from(self.order.len()).expect("< 2^32 interned strings");
        assert!(id != NONE_ID, "intern table full");
        self.ids.insert(s.to_string(), id);
        self.order.push(s.to_string());
        id
    }

    /// Distinct strings interned.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total [`StrTable::intern`] calls.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups answered by an existing entry (the dedup win).
    pub fn hits(&self) -> u64 {
        self.lookups - self.order.len() as u64
    }

    /// Encodes the table: count, cumulative byte ends, concatenated UTF-8.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.order.len() as u32);
        let mut end = 0u32;
        for s in &self.order {
            end = end
                .checked_add(s.len() as u32)
                .expect("interned bytes < 4 GiB");
            buf.put_u32(end);
        }
        for s in &self.order {
            buf.put_bytes(s.as_bytes());
        }
    }
}

/// A decoded string pool (the read-side counterpart of [`StrTable`]).
pub struct StrPool {
    strings: Vec<String>,
}

impl StrPool {
    /// Decodes a pool encoded by [`StrTable::encode`].
    pub fn decode(cur: &mut Cursor<'_>) -> Result<StrPool> {
        let count = cur.take_u32()? as usize;
        let ends = cur.take_u32_vec(count)?;
        let total = ends.last().copied().unwrap_or(0) as usize;
        let bytes = cur.take_bytes(total)?;
        let mut strings = Vec::with_capacity(count);
        let mut start = 0usize;
        for &end in &ends {
            let end = end as usize;
            if end < start || end > bytes.len() {
                return Err(ColumnarError::Corrupt(format!(
                    "string pool: end {end} out of order (start {start}, total {total})"
                )));
            }
            let s = std::str::from_utf8(&bytes[start..end])
                .map_err(|e| ColumnarError::Corrupt(format!("string pool: invalid UTF-8: {e}")))?;
            strings.push(s.to_string());
            start = end;
        }
        Ok(StrPool { strings })
    }

    /// The string with id `id`.
    pub fn get(&self, id: u32) -> Result<&str> {
        self.strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| ColumnarError::Corrupt(format!("string id {id} out of range")))
    }

    /// Like [`StrPool::get`] but mapping the [`NONE_ID`] sentinel to `None`.
    pub fn get_opt(&self, id: u32) -> Result<Option<&str>> {
        if id == NONE_ID {
            Ok(None)
        } else {
            self.get(id).map(Some)
        }
    }

    /// Number of pooled strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// A build-side intern table for fixed-width byte values (e.g. 20-byte
/// addresses): repeated values collapse to one dense `u32` id.
pub struct BytesTable<const N: usize> {
    ids: HashMap<[u8; N], u32>,
    order: Vec<[u8; N]>,
    lookups: u64,
}

impl<const N: usize> Default for BytesTable<N> {
    fn default() -> Self {
        BytesTable {
            ids: HashMap::new(),
            order: Vec::new(),
            lookups: 0,
        }
    }
}

impl<const N: usize> BytesTable<N> {
    /// An empty table.
    pub fn new() -> BytesTable<N> {
        BytesTable::default()
    }

    /// The id for `value`, interning it on first sight.
    pub fn intern(&mut self, value: [u8; N]) -> u32 {
        self.lookups += 1;
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = u32::try_from(self.order.len()).expect("< 2^32 interned values");
        assert!(id != NONE_ID, "intern table full");
        self.ids.insert(value, id);
        self.order.push(value);
        id
    }

    /// Distinct values interned.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total [`BytesTable::intern`] calls.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups answered by an existing entry.
    pub fn hits(&self) -> u64 {
        self.lookups - self.order.len() as u64
    }

    /// Encodes the table: count, then `count * N` raw bytes.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32(self.order.len() as u32);
        for v in &self.order {
            buf.put_bytes(v);
        }
    }
}

/// A decoded fixed-width value pool (read side of [`BytesTable`]).
pub struct FixedPool<const N: usize> {
    values: Vec<[u8; N]>,
}

impl<const N: usize> FixedPool<N> {
    /// Decodes a pool encoded by [`BytesTable::encode`].
    pub fn decode(cur: &mut Cursor<'_>) -> Result<FixedPool<N>> {
        let count = cur.take_u32()? as usize;
        let values = cur.take_fixed_vec::<N>(count)?;
        Ok(FixedPool { values })
    }

    /// The value with id `id`.
    pub fn get(&self, id: u32) -> Result<[u8; N]> {
        self.values
            .get(id as usize)
            .copied()
            .ok_or_else(|| ColumnarError::Corrupt(format!("value id {id} out of range")))
    }

    /// Number of pooled values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_round_trips_sections() {
        let mut b = FileBuilder::new();
        b.add(7, vec![1, 2, 3]);
        b.add(9, Vec::new());
        b.add(3, vec![0xFF; 100]);
        let bytes = b.finish();
        assert!(is_columnar(&bytes));

        let view = FileView::parse(&bytes).expect("parses");
        assert_eq!(view.version(), VERSION);
        assert_eq!(view.section_count(), 3);
        assert_eq!(view.section(7).unwrap(), &[1, 2, 3]);
        assert_eq!(view.section(9).unwrap(), &[] as &[u8]);
        assert_eq!(view.section(3).unwrap().len(), 100);
        assert_eq!(view.section(8), Err(ColumnarError::MissingSection(8)));
    }

    /// The exact header bytes of a one-section file are pinned: any layout
    /// drift (field order, widths, endianness, checksum definition) breaks
    /// this test rather than silently producing unreadable files.
    #[test]
    fn header_layout_is_pinned() {
        let mut b = FileBuilder::new();
        b.add(1, vec![0xAB, 0xCD]);
        let bytes = b.finish();

        // Preamble.
        assert_eq!(&bytes[0..4], b"ENSC");
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes()); // version
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes()); // section count
                                                        // Directory entry: id, offset, len, checksum.
        assert_eq!(&bytes[12..16], &1u32.to_le_bytes());
        let payload_offset = (PREAMBLE_BYTES + DIR_ENTRY_BYTES + 8) as u64;
        assert_eq!(&bytes[16..24], &payload_offset.to_le_bytes());
        assert_eq!(&bytes[24..32], &2u64.to_le_bytes());
        assert_eq!(
            &bytes[32..40],
            &checksum64(&[0xAB, 0xCD]).to_le_bytes(),
            "payload checksum"
        );
        // Directory checksum covers everything before it.
        assert_eq!(&bytes[40..48], &checksum64(&bytes[..40]).to_le_bytes());
        // Payload.
        assert_eq!(&bytes[48..], &[0xAB, 0xCD]);
    }

    /// Pinned checksum vectors: these exact values are written into every
    /// file, so the function may never change for version-1 files.
    #[test]
    fn checksum64_vectors_are_pinned() {
        assert_eq!(checksum64(b""), 0xaf63_bd4c_8601_b7df);
        assert_eq!(checksum64(b"ens"), 0x7954_5308_7524_f8b5);
        assert_eq!(checksum64(b"panning for gold.eth"), 0x06a5_14d3_53eb_b9c9);
    }

    #[test]
    fn corruption_is_detected() {
        let mut b = FileBuilder::new();
        b.add(1, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let good = b.finish();

        // Flip one payload byte.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            FileView::parse(&bad),
            Err(ColumnarError::ChecksumMismatch { section: 1 })
        ));

        // Flip one directory byte.
        let mut bad = good.clone();
        bad[13] ^= 0x01;
        assert!(matches!(
            FileView::parse(&bad),
            Err(ColumnarError::DirectoryChecksumMismatch)
        ));

        // Truncate the payload.
        let truncated = &good[..good.len() - 2];
        assert!(matches!(
            FileView::parse(truncated),
            Err(ColumnarError::Truncated { .. })
        ));

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            FileView::parse(&bad),
            Err(ColumnarError::BadMagic)
        ));

        // Future version.
        let mut bad = good;
        bad[4] = 99;
        // Directory checksum covers the version, so either error is a
        // refusal; re-frame so only the version differs.
        let err = FileView::parse(&bad).unwrap_err();
        assert!(matches!(
            err,
            ColumnarError::UnsupportedVersion(99) | ColumnarError::DirectoryChecksumMismatch
        ));
    }

    #[test]
    fn cursor_reads_are_bounds_checked() {
        let buf = [1u8, 0, 0, 0, 2, 0, 0, 0];
        let mut cur = Cursor::new(&buf, "test");
        assert_eq!(cur.take_u32().unwrap(), 1);
        assert_eq!(cur.take_u32().unwrap(), 2);
        assert!(matches!(
            cur.take_u8(),
            Err(ColumnarError::Truncated { .. })
        ));
        cur.expect_end().unwrap();

        let mut cur = Cursor::new(&buf, "test");
        assert_eq!(cur.take_u64().unwrap(), 1 | (2 << 32));
        assert!(cur.expect_end().is_ok());

        let mut cur = Cursor::new(&buf, "test");
        cur.take_u32().unwrap();
        assert!(cur.expect_end().is_err(), "trailing bytes must error");
    }

    #[test]
    fn bitmaps_round_trip() {
        for n in [0usize, 1, 7, 8, 9, 64, 65] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let mut buf = Vec::new();
            push_bits(&mut buf, &bits);
            assert_eq!(buf.len(), n.div_ceil(8));
            let mut cur = Cursor::new(&buf, "bits");
            let decoded = cur.take_bits(n).unwrap();
            cur.expect_end().unwrap();
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(decoded.get(i), b, "bit {i} of {n}");
            }
        }
    }

    /// The intern-table byte layout is pinned alongside the header.
    #[test]
    fn str_table_layout_is_pinned() {
        let mut t = StrTable::new();
        assert_eq!(t.intern("gold"), 0);
        assert_eq!(t.intern("eth"), 1);
        assert_eq!(t.intern("gold"), 0, "dedup");
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookups(), 3);
        assert_eq!(t.hits(), 1);

        let mut buf = Vec::new();
        t.encode(&mut buf);
        let expected: Vec<u8> = [
            2u32.to_le_bytes().as_slice(), // count
            4u32.to_le_bytes().as_slice(), // end of "gold"
            7u32.to_le_bytes().as_slice(), // end of "eth"
            b"goldeth",
        ]
        .concat();
        assert_eq!(buf, expected);

        let mut cur = Cursor::new(&buf, "strings");
        let pool = StrPool::decode(&mut cur).unwrap();
        cur.expect_end().unwrap();
        assert_eq!(pool.get(0).unwrap(), "gold");
        assert_eq!(pool.get(1).unwrap(), "eth");
        assert!(pool.get(2).is_err());
        assert_eq!(pool.get_opt(NONE_ID).unwrap(), None);
    }

    #[test]
    fn bytes_table_round_trips() {
        let mut t = BytesTable::<4>::new();
        assert_eq!(t.intern([1, 2, 3, 4]), 0);
        assert_eq!(t.intern([5, 6, 7, 8]), 1);
        assert_eq!(t.intern([1, 2, 3, 4]), 0);
        assert_eq!(t.hits(), 1);

        let mut buf = Vec::new();
        t.encode(&mut buf);
        assert_eq!(buf.len(), 4 + 8);
        let mut cur = Cursor::new(&buf, "addresses");
        let pool = FixedPool::<4>::decode(&mut cur).unwrap();
        cur.expect_end().unwrap();
        assert_eq!(pool.get(0).unwrap(), [1, 2, 3, 4]);
        assert_eq!(pool.get(1).unwrap(), [5, 6, 7, 8]);
        assert!(pool.get(2).is_err());
    }

    #[test]
    fn unicode_strings_survive_the_pool() {
        let mut t = StrTable::new();
        let ids: Vec<u32> = ["Binance 14", "币安", "emoji 😀", ""]
            .iter()
            .map(|s| t.intern(s))
            .collect();
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut cur = Cursor::new(&buf, "strings");
        let pool = StrPool::decode(&mut cur).unwrap();
        assert_eq!(pool.get(ids[1]).unwrap(), "币安");
        assert_eq!(pool.get(ids[2]).unwrap(), "emoji 😀");
        assert_eq!(pool.get(ids[3]).unwrap(), "");
    }
}
