//! Unit-level matrix tests of every warning policy against every name
//! state a wallet can encounter.

use ens_types::{Address, Duration, Timestamp};
use wallet_sim::{ResolutionContext, Warning, WarningPolicy};

fn base_ctx() -> ResolutionContext {
    ResolutionContext {
        resolved: Some(Address::derive(b"someone")),
        expiry: Some(Timestamp::from_ymd(2023, 1, 1)),
        registered_at: Some(Timestamp::from_ymd(2022, 1, 1)),
        owner_changed_at: None,
        reverse_matches: Some(true),
        now: Timestamp::from_ymd(2022, 6, 1),
    }
}

const WINDOW: Duration = Duration::from_days(90);

#[test]
fn silent_policy_never_warns() {
    let mut ctx = base_ctx();
    ctx.now = Timestamp::from_ymd(2024, 1, 1); // long expired
    ctx.reverse_matches = Some(false);
    assert_eq!(WarningPolicy::Silent.evaluate(&ctx), None);
}

#[test]
fn risk_policy_branches() {
    let policy = WarningPolicy::WarnOnRisk {
        recent_window: WINDOW,
    };
    // Healthy mid-life name: silent.
    assert_eq!(policy.evaluate(&base_ctx()), None);

    // Expired: warns with the elapsed time.
    let mut ctx = base_ctx();
    ctx.now = Timestamp::from_ymd(2023, 2, 1);
    match policy.evaluate(&ctx) {
        Some(Warning::Expired { since }) => assert_eq!(since.as_days(), 31),
        other => panic!("expected Expired, got {other:?}"),
    }

    // Fresh registration: warns with the age.
    let mut ctx = base_ctx();
    ctx.now = Timestamp::from_ymd(2022, 1, 15);
    match policy.evaluate(&ctx) {
        Some(Warning::RecentlyRegistered { age }) => assert_eq!(age.as_days(), 14),
        other => panic!("expected RecentlyRegistered, got {other:?}"),
    }

    // Unresolvable names never warn (nothing to send to).
    let mut ctx = base_ctx();
    ctx.resolved = None;
    ctx.now = Timestamp::from_ymd(2024, 1, 1);
    assert_eq!(policy.evaluate(&ctx), None);
}

#[test]
fn history_aware_policy_keys_on_ownership_changes_only() {
    let policy = WarningPolicy::WarnOnRecentOwnerChange {
        recent_window: WINDOW,
    };
    // Fresh FIRST registration: silent (this is the annoyance win).
    let mut ctx = base_ctx();
    ctx.now = Timestamp::from_ymd(2022, 1, 10);
    assert_eq!(policy.evaluate(&ctx), None);

    // Fresh re-registration: warns.
    ctx.owner_changed_at = Some(Timestamp::from_ymd(2022, 1, 5));
    match policy.evaluate(&ctx) {
        Some(Warning::RecentlyReregistered { age }) => assert_eq!(age.as_days(), 5),
        other => panic!("expected RecentlyReregistered, got {other:?}"),
    }

    // Old re-registration outside the window: silent again.
    ctx.now = Timestamp::from_ymd(2022, 9, 1);
    assert_eq!(policy.evaluate(&ctx), None);
}

#[test]
fn reverse_policy_keys_on_the_forward_and_back_check() {
    let policy = WarningPolicy::WarnOnReverseMismatch;
    // Matching reverse record: silent.
    assert_eq!(policy.evaluate(&base_ctx()), None);
    // Mismatch: warns.
    let mut ctx = base_ctx();
    ctx.reverse_matches = Some(false);
    assert_eq!(policy.evaluate(&ctx), Some(Warning::ReverseMismatch));
    // Unknown (wallet didn't perform the check): silent, not a guess.
    ctx.reverse_matches = None;
    assert_eq!(policy.evaluate(&ctx), None);
}

#[test]
fn combined_policy_prefers_the_risk_branch_but_falls_back_to_reverse() {
    let policy = WarningPolicy::WarnOnRiskOrReverseMismatch {
        recent_window: WINDOW,
    };
    // Expired AND reverse-mismatched: the expiry warning wins (it is the
    // more specific signal).
    let mut ctx = base_ctx();
    ctx.now = Timestamp::from_ymd(2023, 3, 1);
    ctx.reverse_matches = Some(false);
    assert!(matches!(
        policy.evaluate(&ctx),
        Some(Warning::Expired { .. })
    ));

    // Healthy timing but mismatched reverse: the reverse branch fires.
    let mut ctx = base_ctx();
    ctx.reverse_matches = Some(false);
    assert_eq!(policy.evaluate(&ctx), Some(Warning::ReverseMismatch));
}
