//! # wallet-sim
//!
//! Models of the seven ENS-supporting digital wallets the paper tests
//! (Appendix B, Table 2), plus the warning countermeasure the paper
//! proposes in §6.
//!
//! The empirical finding being modelled: **every** production wallet
//! resolves an ENS name straight through the resolver with no freshness
//! check, so an expired (still-resolving-to-the-old-owner) or freshly
//! re-registered (now-resolving-to-a-stranger) name looks exactly like a
//! healthy one. [`WarningPolicy::WarnOnRisk`] implements the proposed fix:
//! surface a warning when the name is past expiry or its registration is
//! only days old.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ens_registry::EnsSystem;
use ens_types::{Address, Duration, EnsName, Timestamp};
use serde::{Deserialize, Serialize};

/// The seven wallets of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WalletId {
    /// MetaMask (non-custodial browser/mobile wallet).
    Metamask,
    /// Coinbase (the only custodial exchange resolving ENS at study time).
    Coinbase,
    /// Trust Wallet.
    TrustWallet,
    /// Bitcoin.com wallet.
    BitcoinCom,
    /// AlphaWallet.
    AlphaWallet,
    /// Atomic Wallet.
    AtomicWallet,
    /// Rainbow Wallet.
    RainbowWallet,
}

/// What a wallet does about stale names before sending funds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarningPolicy {
    /// Resolve silently — the behaviour of every wallet in Table 2.
    Silent,
    /// The paper's proposed countermeasure: warn when the name is expired,
    /// or was (re-)registered within the given window.
    WarnOnRisk {
        /// How recent a registration must be to trigger the
        /// "recently registered" warning.
        recent_window: Duration,
    },
    /// The history-aware version of the paper's proposal: warn only when
    /// the name's *ownership changed* (it was re-registered by a different
    /// wallet) within the window. Needs registration-history data (e.g. a
    /// subgraph query) rather than just on-chain state, but eliminates the
    /// false positives that plain freshness checks produce on brand-new
    /// legitimate names.
    WarnOnRecentOwnerChange {
        /// How recent the ownership change must be.
        recent_window: Duration,
    },
    /// An alternative heuristic this reproduction evaluates: warn when the
    /// forward-and-back check fails (the resolved address has not claimed
    /// the name as its primary name). Dropcatchers rarely claim reverse
    /// records — but neither do many honest owners, so this policy trades
    /// recall for annoyance (see `ens-dropcatch::countermeasures`).
    WarnOnReverseMismatch,
    /// Both heuristics combined (either one fires).
    WarnOnRiskOrReverseMismatch {
        /// Window for the recent-registration branch.
        recent_window: Duration,
    },
}

/// The warning a policy may surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Warning {
    /// The name is past its expiry but still resolving to the old record.
    Expired {
        /// How long past expiry.
        since: Duration,
    },
    /// The name's current registration is very fresh — a classic
    /// dropcatch signature.
    RecentlyRegistered {
        /// Age of the current registration.
        age: Duration,
    },
    /// The name changed hands through an expiry recently — a dropcatch.
    RecentlyReregistered {
        /// Time since the ownership change.
        age: Duration,
    },
    /// The resolved address has not claimed this name as its primary name
    /// (forward-and-back check failed).
    ReverseMismatch,
}

/// Everything the warning logic needs about a name at send time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolutionContext {
    /// What the resolver currently returns.
    pub resolved: Option<Address>,
    /// Current registration's expiry, if the name was ever registered.
    pub expiry: Option<Timestamp>,
    /// When the current registration was made.
    pub registered_at: Option<Timestamp>,
    /// When the name last changed hands through an expiry (a
    /// re-registration by a different wallet). `None` if it never did or
    /// the wallet has no history source.
    pub owner_changed_at: Option<Timestamp>,
    /// Whether the resolved address's primary (reverse) name points back
    /// at this name. `None` when the check was not performed.
    pub reverse_matches: Option<bool>,
    /// Wall-clock time of the send attempt.
    pub now: Timestamp,
}

impl ResolutionContext {
    /// Snapshots the context from a live [`EnsSystem`].
    pub fn from_ens(ens: &EnsSystem, name: &EnsName, now: Timestamp) -> ResolutionContext {
        let registration = ens.registration(name.label());
        let resolved = ens.resolve(name);
        ResolutionContext {
            resolved,
            expiry: registration.map(|r| r.expiry),
            registered_at: registration.map(|r| r.registered_at),
            // Live contract state carries no history; a wallet needs an
            // indexer (subgraph) to fill this in.
            owner_changed_at: None,
            reverse_matches: resolved.map(|a| ens.primary_name(a) == Some(name)),
            now,
        }
    }
}

/// What the user sees when they type a name into the send box.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resolution {
    /// The address the funds would go to (wallets resolve unconditionally —
    /// that is the finding).
    pub address: Option<Address>,
    /// A warning, if the wallet's policy produced one.
    pub warning: Option<Warning>,
}

impl WarningPolicy {
    /// Evaluates the policy against a resolution context.
    pub fn evaluate(&self, ctx: &ResolutionContext) -> Option<Warning> {
        ctx.resolved?;
        let risk_window = match self {
            WarningPolicy::WarnOnRisk { recent_window }
            | WarningPolicy::WarnOnRiskOrReverseMismatch { recent_window } => Some(*recent_window),
            _ => None,
        };
        let rereg_window = match self {
            WarningPolicy::WarnOnRecentOwnerChange { recent_window } => Some(*recent_window),
            _ => None,
        };
        let check_reverse = matches!(
            self,
            WarningPolicy::WarnOnReverseMismatch
                | WarningPolicy::WarnOnRiskOrReverseMismatch { .. }
        );

        if let Some(window) = risk_window {
            if let Some(expiry) = ctx.expiry {
                if ctx.now >= expiry {
                    return Some(Warning::Expired {
                        since: ctx.now.saturating_since(expiry),
                    });
                }
            }
            if let Some(registered_at) = ctx.registered_at {
                let age = ctx.now.saturating_since(registered_at);
                if age < window {
                    return Some(Warning::RecentlyRegistered { age });
                }
            }
        }
        if let (Some(window), Some(changed_at)) = (rereg_window, ctx.owner_changed_at) {
            let age = ctx.now.saturating_since(changed_at);
            if ctx.now >= changed_at && age < window {
                return Some(Warning::RecentlyReregistered { age });
            }
        }
        if check_reverse && ctx.reverse_matches == Some(false) {
            return Some(Warning::ReverseMismatch);
        }
        None
    }
}

/// A wallet build with its resolution behaviour.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalletProfile {
    /// Which wallet.
    pub id: WalletId,
    /// Display name as in Table 2.
    pub name: &'static str,
    /// Version / date tested in the paper.
    pub version: &'static str,
    /// True for custodial wallets (only Coinbase here).
    pub custodial: bool,
    /// The warning behaviour of this build.
    pub policy: WarningPolicy,
}

impl WalletProfile {
    /// Resolves `name` the way this wallet build would.
    pub fn resolve(&self, ens: &EnsSystem, name: &EnsName, now: Timestamp) -> Resolution {
        let ctx = ResolutionContext::from_ens(ens, name, now);
        Resolution {
            address: ctx.resolved,
            warning: self.policy.evaluate(&ctx),
        }
    }

    /// True if this build would display a warning for `ctx` — the column
    /// the paper reports in Table 2.
    pub fn displays_warning(&self, ctx: &ResolutionContext) -> bool {
        self.policy.evaluate(ctx).is_some()
    }

    /// This wallet patched with the proposed countermeasure (90-day
    /// recent-registration window).
    pub fn with_countermeasure(mut self) -> WalletProfile {
        self.policy = WarningPolicy::WarnOnRisk {
            recent_window: Duration::from_days(90),
        };
        self
    }
}

/// The seven production wallet builds from Table 2 — all silent.
pub fn production_wallets() -> Vec<WalletProfile> {
    use WalletId::*;
    let rows: [(WalletId, &'static str, &'static str, bool); 7] = [
        (Metamask, "Metamask", "11.13.1", false),
        (Coinbase, "Coinbase", "05/2024", true),
        (TrustWallet, "Trust Wallet", "2.9.2", false),
        (BitcoinCom, "Bitcoin.com", "8.22.1", false),
        (AlphaWallet, "Alpha Wallet", "3.72", false),
        (AtomicWallet, "Atomic Wallet", "1.29.5", false),
        (RainbowWallet, "Rainbow Wallet", "1.4.81", false),
    ];
    rows.into_iter()
        .map(|(id, name, version, custodial)| WalletProfile {
            id,
            name,
            version,
            custodial,
            policy: WarningPolicy::Silent,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_registry::commit_and_register;
    use ens_types::{Label, Wei};
    use sim_chain::Chain;

    const PRICE: u64 = 200_000;

    fn world_with_expired_name() -> (EnsSystem, Chain, EnsName) {
        let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
        let mut ens = EnsSystem::new();
        let alice = Address::derive(b"alice");
        chain.mint(alice, Wei::from_eth(100));
        commit_and_register(
            &mut ens,
            &mut chain,
            &Label::parse("gold").unwrap(),
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();
        chain.advance(Duration::from_years(2));
        (ens, chain, EnsName::parse("gold.eth").unwrap())
    }

    #[test]
    fn all_production_wallets_resolve_expired_names_silently() {
        let (ens, chain, name) = world_with_expired_name();
        for wallet in production_wallets() {
            let res = wallet.resolve(&ens, &name, chain.now());
            assert_eq!(
                res.address,
                Some(Address::derive(b"alice")),
                "{}",
                wallet.name
            );
            assert_eq!(res.warning, None, "{} should be silent", wallet.name);
        }
    }

    #[test]
    fn countermeasure_warns_on_expired_name() {
        let (ens, chain, name) = world_with_expired_name();
        let wallet = production_wallets().remove(0).with_countermeasure();
        let res = wallet.resolve(&ens, &name, chain.now());
        // Still resolves (funds *could* be sent) but now with a warning.
        assert!(res.address.is_some());
        assert!(matches!(res.warning, Some(Warning::Expired { .. })));
    }

    #[test]
    fn countermeasure_warns_on_fresh_reregistration() {
        let (mut ens, mut chain, name) = world_with_expired_name();
        let bob = Address::derive(b"bob");
        chain.mint(bob, Wei::from_eth(1_000_000));
        commit_and_register(
            &mut ens,
            &mut chain,
            name.label(),
            bob,
            2,
            Duration::from_years(1),
            PRICE,
            Some(bob),
        )
        .unwrap();
        chain.advance(Duration::from_days(5));

        let wallet = production_wallets().remove(0).with_countermeasure();
        let res = wallet.resolve(&ens, &name, chain.now());
        assert_eq!(res.address, Some(bob));
        match res.warning {
            Some(Warning::RecentlyRegistered { age }) => {
                assert_eq!(age.as_days(), 5);
            }
            other => panic!("expected recent-registration warning, got {other:?}"),
        }
    }

    #[test]
    fn countermeasure_is_silent_on_healthy_established_names() {
        let (mut ens, mut chain, name) = world_with_expired_name();
        let bob = Address::derive(b"bob");
        chain.mint(bob, Wei::from_eth(1_000_000));
        commit_and_register(
            &mut ens,
            &mut chain,
            name.label(),
            bob,
            2,
            Duration::from_years(2),
            PRICE,
            Some(bob),
        )
        .unwrap();
        // Well past the recent window, well before expiry.
        chain.advance(Duration::from_days(200));
        let wallet = production_wallets().remove(0).with_countermeasure();
        let res = wallet.resolve(&ens, &name, chain.now());
        assert_eq!(res.warning, None);
    }

    #[test]
    fn unregistered_names_resolve_to_nothing_and_never_warn() {
        let (ens, chain, _) = world_with_expired_name();
        let name = EnsName::parse("never-registered.eth").unwrap();
        let wallet = production_wallets().remove(0).with_countermeasure();
        let res = wallet.resolve(&ens, &name, chain.now());
        assert_eq!(res.address, None);
        assert_eq!(res.warning, None);
    }

    #[test]
    fn table2_roster_matches_the_paper() {
        let wallets = production_wallets();
        assert_eq!(wallets.len(), 7);
        assert_eq!(wallets.iter().filter(|w| w.custodial).count(), 1);
        assert!(wallets.iter().all(|w| w.policy == WarningPolicy::Silent));
    }
}
