//! ENS protocol errors.

use std::fmt;

use ens_types::{Label, Timestamp};
use sim_chain::ChainError;

/// Errors raised by ENS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnsError {
    /// The name is currently registered (or in grace) and cannot be taken.
    NotAvailable {
        /// The contested label.
        label: Label,
        /// When the name becomes available (expiry + grace).
        available_at: Timestamp,
    },
    /// The name has no live registration.
    NotRegistered(Label),
    /// The caller does not own the name.
    NotOwner(Label),
    /// No commitment found for this registration request.
    CommitmentNotFound,
    /// The commitment is younger than the minimum age (front-running guard).
    CommitmentTooNew,
    /// The commitment is older than the maximum age.
    CommitmentTooOld,
    /// Registration duration below the 28-day minimum.
    DurationTooShort,
    /// Renewal would extend a name that is already past its grace period.
    PastGracePeriod(Label),
    /// The underlying payment failed.
    Payment(ChainError),
}

impl fmt::Display for EnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsError::NotAvailable {
                label,
                available_at,
            } => write!(f, "{label}.eth is not available until {available_at}"),
            EnsError::NotRegistered(l) => write!(f, "{l}.eth is not registered"),
            EnsError::NotOwner(l) => write!(f, "caller does not own {l}.eth"),
            EnsError::CommitmentNotFound => write!(f, "no matching commitment"),
            EnsError::CommitmentTooNew => write!(f, "commitment too new"),
            EnsError::CommitmentTooOld => write!(f, "commitment too old"),
            EnsError::DurationTooShort => write!(f, "registration below 28-day minimum"),
            EnsError::PastGracePeriod(l) => {
                write!(f, "{l}.eth is past its grace period and cannot be renewed")
            }
            EnsError::Payment(e) => write!(f, "payment failed: {e}"),
        }
    }
}

impl std::error::Error for EnsError {}

impl From<ChainError> for EnsError {
    fn from(e: ChainError) -> Self {
        EnsError::Payment(e)
    }
}
