//! The ENS registry (namehash → owner) and the public resolver
//! (namehash → address record).
//!
//! The resolver is where the paper's central vulnerability lives: records
//! are **not** cleared when a registration expires (ENS FAQ, cited as [23]
//! in the paper). An expired name keeps resolving to the previous owner's
//! wallet until a new registrant overwrites the record — so there is no
//! "resolution failure" warning phase like an expired DNS domain would have.

use std::collections::HashMap;

use ens_types::{Address, NameHash, Timestamp};
use serde::{Deserialize, Serialize};

/// A registry record for one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegistryRecord {
    /// The node owner (controller of the record, not necessarily the NFT
    /// registrant).
    pub owner: Address,
    /// When this owner was set (for timeline reconstruction in tests).
    pub since: Timestamp,
}

/// namehash → owner mapping.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Registry {
    records: HashMap<NameHash, RegistryRecord>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The record for `node`.
    pub fn record(&self, node: NameHash) -> Option<&RegistryRecord> {
        self.records.get(&node)
    }

    /// The owner of `node`, if any.
    pub fn owner(&self, node: NameHash) -> Option<Address> {
        self.records.get(&node).map(|r| r.owner)
    }

    /// Sets the owner of `node`.
    pub(crate) fn set_owner(&mut self, node: NameHash, owner: Address, now: Timestamp) {
        self.records
            .insert(node, RegistryRecord { owner, since: now });
    }

    /// Number of nodes with records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no node has a record.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The public resolver: namehash → wallet address.
///
/// Deliberately has **no notion of expiry**. `addr()` returns whatever was
/// last written, which is exactly the behaviour the paper measures (§4.4:
/// "domains ... continue to resolve to the addresses set by previous owners
/// even after expiration").
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PublicResolver {
    addrs: HashMap<NameHash, Address>,
}

impl PublicResolver {
    /// Creates an empty resolver.
    pub fn new() -> PublicResolver {
        PublicResolver::default()
    }

    /// The `addr` record for `node`, regardless of registration state.
    pub fn addr(&self, node: NameHash) -> Option<Address> {
        self.addrs.get(&node).copied()
    }

    /// Writes the `addr` record.
    pub(crate) fn set_addr(&mut self, node: NameHash, addr: Address) {
        self.addrs.insert(node, addr);
    }

    /// Number of nodes with an `addr` record.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_types::namehash;

    #[test]
    fn owner_round_trip() {
        let mut reg = Registry::new();
        let node = namehash("gold.eth");
        assert_eq!(reg.owner(node), None);
        let alice = Address::derive(b"alice");
        reg.set_owner(node, alice, Timestamp(42));
        assert_eq!(reg.owner(node), Some(alice));
        assert_eq!(reg.record(node).unwrap().since, Timestamp(42));
    }

    #[test]
    fn resolver_keeps_records_until_overwritten() {
        let mut res = PublicResolver::new();
        let node = namehash("gold.eth");
        let alice = Address::derive(b"alice");
        let bob = Address::derive(b"bob");

        res.set_addr(node, alice);
        // No expiry parameter exists: the record persists unconditionally.
        assert_eq!(res.addr(node), Some(alice));
        res.set_addr(node, bob);
        assert_eq!(res.addr(node), Some(bob));
    }
}
