//! # ens-registry
//!
//! A faithful, deterministic simulation of the ENS `.eth` registration
//! protocol: the registry (namehash → owner), the base registrar (ERC-721
//! registrations with expiry and a 90-day grace period), the registrar
//! controller (commit–reveal registration, rent pricing by label length,
//! and the 21-day exponential Dutch-auction premium for released names),
//! and the public resolver — whose `addr` records deliberately **survive
//! expiry**, the design decision at the heart of the dropcatching hazard
//! studied in *Panning for gold.eth* (IMC 2024).
//!
//! Entry point: [`EnsSystem`], wired to a [`sim_chain::Chain`] for payments
//! and time. Every state change emits an [`EnsEvent`] that `ens-subgraph`
//! later indexes, mirroring how the paper's crawler consumes the real ENS
//! subgraph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod events;
pub mod pricing;
pub mod registrar;
pub mod registry;
pub mod reverse;
pub mod system;

pub use error::EnsError;
pub use events::{EnsEvent, EnsEventKind};
pub use pricing::{
    premium_after_grace, usd_to_wei, RentSchedule, GRACE_PERIOD, MIN_REGISTRATION, PREMIUM_PERIOD,
    PREMIUM_START_CENTS,
};
pub use registrar::{BaseRegistrar, Registration};
pub use registry::{PublicResolver, Registry, RegistryRecord};
pub use reverse::ReverseRegistrar;
pub use system::{commit_and_register, EnsSystem, Receipt, MAX_COMMITMENT_AGE, MIN_COMMITMENT_AGE};
