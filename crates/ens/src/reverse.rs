//! The reverse registrar: `address → primary name` records.
//!
//! On mainnet, a user can claim `<addr>.addr.reverse` and point it at their
//! name, making the name their *primary name*; forward-and-back agreement
//! (`resolve(name) == addr` **and** `reverse(addr) == name`) is the
//! integrity check well-behaved dApps perform. Dropcatchers rarely bother
//! claiming reverse records for caught names — which makes the reverse
//! check a natural *additional* countermeasure beyond the expiry warning
//! the paper proposes; `ens-dropcatch::countermeasures` evaluates both.

use std::collections::HashMap;

use ens_types::{Address, EnsName};
use serde::{Deserialize, Serialize};

/// address → primary name registrations.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReverseRegistrar {
    records: HashMap<Address, EnsName>,
}

impl ReverseRegistrar {
    /// Creates an empty reverse registrar.
    pub fn new() -> ReverseRegistrar {
        ReverseRegistrar::default()
    }

    /// The primary name claimed by `addr`, if any.
    pub fn primary_name(&self, addr: Address) -> Option<&EnsName> {
        self.records.get(&addr)
    }

    /// Sets `addr`'s primary name. On chain, only `addr` itself can do
    /// this (the reverse node is derived from the caller), so there is no
    /// ownership parameter to check — the caller *is* the owner.
    pub(crate) fn set_primary_name(&mut self, addr: Address, name: EnsName) {
        self.records.insert(addr, name);
    }

    /// Clears `addr`'s primary name.
    pub(crate) fn clear(&mut self, addr: Address) {
        self.records.remove(&addr);
    }

    /// Number of claimed reverse records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_clear_round_trip() {
        let mut rev = ReverseRegistrar::new();
        let alice = Address::derive(b"alice");
        let name = EnsName::parse("gold.eth").unwrap();
        assert_eq!(rev.primary_name(alice), None);
        rev.set_primary_name(alice, name.clone());
        assert_eq!(rev.primary_name(alice), Some(&name));
        rev.clear(alice);
        assert_eq!(rev.primary_name(alice), None);
        assert!(rev.is_empty());
    }
}
