//! The assembled ENS deployment: controller + registrar + registry +
//! resolver, wired to a [`sim_chain::Chain`] for payments and time.

use std::collections::HashMap;

use ens_types::{
    keccak256, Address, Duration, EnsName, Hash32, Label, Timestamp, TxHash, UsdCents, Wei,
};
use serde::{Deserialize, Serialize};
use sim_chain::{Chain, TxKind};

use crate::error::EnsError;
use crate::events::{EnsEvent, EnsEventKind};
use crate::pricing::{premium_after_grace, usd_to_wei, RentSchedule, MIN_REGISTRATION};
use crate::registrar::{BaseRegistrar, Registration};
use crate::registry::{PublicResolver, Registry};
use crate::reverse::ReverseRegistrar;

/// Minimum commitment age before `register` accepts it (front-running guard,
/// as in the production controller).
pub const MIN_COMMITMENT_AGE: Duration = Duration::from_secs(60);

/// Maximum commitment age.
pub const MAX_COMMITMENT_AGE: Duration = Duration::from_days(1);

/// A successful registration or renewal, with everything the caller paid.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// The name concerned.
    pub label: Label,
    /// Payment transaction.
    pub tx: TxHash,
    /// Base rent paid.
    pub base_cost: Wei,
    /// Premium paid (zero outside the Dutch auction window).
    pub premium: Wei,
    /// New expiry.
    pub expires: Timestamp,
}

impl Receipt {
    /// Total wei paid.
    pub fn total(&self) -> Wei {
        self.base_cost + self.premium
    }
}

/// The full simulated ENS deployment.
///
/// ```
/// use ens_registry::{commit_and_register, EnsSystem};
/// use ens_types::{Address, Duration, EnsName, Label, Timestamp, Wei};
/// use sim_chain::Chain;
///
/// let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
/// let mut ens = EnsSystem::new();
/// let alice = Address::derive(b"alice");
/// chain.mint(alice, Wei::from_eth(10));
///
/// let label = Label::parse("gold").unwrap();
/// commit_and_register(
///     &mut ens, &mut chain, &label, alice, 1,
///     Duration::from_years(1), 200_000, Some(alice),
/// ).unwrap();
///
/// let name: EnsName = "gold.eth".parse().unwrap();
/// assert_eq!(ens.resolve(&name), Some(alice));
/// // The paper's hazard: years after expiry it still resolves to alice.
/// chain.advance(Duration::from_years(3));
/// assert_eq!(ens.registrant_of(&label, chain.now()), None);
/// assert_eq!(ens.resolve(&name), Some(alice));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnsSystem {
    registrar: BaseRegistrar,
    registry: Registry,
    resolver: PublicResolver,
    reverse: ReverseRegistrar,
    rents: RentSchedule,
    premium_enabled: bool,
    commitments: HashMap<Hash32, Timestamp>,
    events: Vec<EnsEvent>,
    controller_address: Address,
}

impl Default for EnsSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl EnsSystem {
    /// Creates a deployment with the production rent schedule.
    pub fn new() -> EnsSystem {
        EnsSystem {
            registrar: BaseRegistrar::new(),
            registry: Registry::new(),
            resolver: PublicResolver::new(),
            reverse: ReverseRegistrar::new(),
            rents: RentSchedule::default(),
            premium_enabled: true,
            commitments: HashMap::new(),
            events: Vec::new(),
            controller_address: Address::derive(b"contract/ens-controller"),
        }
    }

    /// Overrides the rent schedule.
    pub fn with_rents(mut self, rents: RentSchedule) -> EnsSystem {
        self.rents = rents;
        self
    }

    /// Disables the temporary-premium Dutch auction — the counterfactual
    /// protocol the paper's §2.1 implicitly contrasts ENS against (DNS-style
    /// fastest-finger drops). Released names become registrable at base
    /// rent the moment the grace period ends.
    pub fn with_premium_disabled(mut self) -> EnsSystem {
        self.premium_enabled = false;
        self
    }

    /// The controller contract's payment address.
    pub fn controller_address(&self) -> Address {
        self.controller_address
    }

    // ------------------------------------------------------------------
    // Read API
    // ------------------------------------------------------------------

    /// True if `label` can be registered right now.
    pub fn available(&self, label: &Label, now: Timestamp) -> bool {
        self.registrar.available(label.hash(), now)
    }

    /// Quote for registering `label` for `duration` at the given ETH price:
    /// `(base_rent, premium)` in USD cents.
    pub fn price_usd(
        &self,
        label: &Label,
        duration: Duration,
        now: Timestamp,
    ) -> (UsdCents, UsdCents) {
        let rent = self.rents.rent_for(label, duration);
        let premium = match self.registrar.registration(label.hash()) {
            Some(r) if self.premium_enabled && now >= r.grace_end() => {
                premium_after_grace(now.saturating_since(r.grace_end()))
            }
            _ => UsdCents::ZERO,
        };
        (rent, premium)
    }

    /// The registrar record for a label (lapsed or live).
    pub fn registration(&self, label: &Label) -> Option<&Registration> {
        self.registrar.registration(label.hash())
    }

    /// Current registrant (None once expired).
    pub fn registrant_of(&self, label: &Label, now: Timestamp) -> Option<Address> {
        self.registrar.registrant_of(label.hash(), now)
    }

    /// Resolves a name to a wallet address the way a digital wallet would:
    /// straight through the resolver, with **no expiry check**. This is the
    /// behaviour all seven wallets in the paper's Table 2 exhibit.
    pub fn resolve(&self, name: &EnsName) -> Option<Address> {
        self.resolver.addr(name.namehash())
    }

    /// All events emitted so far, in chain order.
    pub fn events(&self) -> &[EnsEvent] {
        &self.events
    }

    /// Number of distinct label hashes ever registered.
    pub fn name_count(&self) -> usize {
        self.registrar.len()
    }

    /// Registry/resolver accessors for advanced consumers.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared public resolver.
    pub fn resolver(&self) -> &PublicResolver {
        &self.resolver
    }

    /// The base registrar (simulation ground truth).
    pub fn registrar(&self) -> &BaseRegistrar {
        &self.registrar
    }

    /// The primary (reverse) name claimed by `addr`, if any.
    pub fn primary_name(&self, addr: Address) -> Option<&EnsName> {
        self.reverse.primary_name(addr)
    }

    /// Claims `name` as the caller's primary name. Like mainnet, this is
    /// permissionless for one's *own* address — integrity comes from the
    /// forward-and-back check, not from write control.
    pub fn set_primary_name(&mut self, chain: &Chain, caller: Address, name: &EnsName) {
        self.reverse.set_primary_name(caller, name.clone());
        self.emit(
            chain,
            None,
            EnsEventKind::ReverseClaimed {
                addr: caller,
                name: name.to_full(),
            },
        );
    }

    /// Clears the caller's primary name.
    pub fn clear_primary_name(&mut self, caller: Address) {
        self.reverse.clear(caller);
    }

    /// The forward-and-back integrity check dApps use: the name resolves
    /// to an address whose primary name is the same name.
    pub fn forward_and_back_match(&self, name: &EnsName) -> bool {
        match self.resolve(name) {
            Some(addr) => self.primary_name(addr) == Some(name),
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Commit–reveal
    // ------------------------------------------------------------------

    /// Computes the commitment hash for a pending registration.
    pub fn make_commitment(label: &Label, owner: Address, secret: u64) -> Hash32 {
        let mut buf = Vec::with_capacity(label.len() + 20 + 8);
        buf.extend_from_slice(label.as_str().as_bytes());
        buf.extend_from_slice(&owner.0);
        buf.extend_from_slice(&secret.to_be_bytes());
        Hash32(keccak256(&buf))
    }

    /// Records a commitment at the current chain time.
    pub fn commit(&mut self, chain: &Chain, commitment: Hash32) {
        self.commitments.insert(commitment, chain.now());
    }

    fn consume_commitment(&mut self, now: Timestamp, commitment: Hash32) -> Result<(), EnsError> {
        let made_at = *self
            .commitments
            .get(&commitment)
            .ok_or(EnsError::CommitmentNotFound)?;
        let age = now.saturating_since(made_at);
        if age < MIN_COMMITMENT_AGE {
            return Err(EnsError::CommitmentTooNew);
        }
        if age > MAX_COMMITMENT_AGE {
            return Err(EnsError::CommitmentTooOld);
        }
        self.commitments.remove(&commitment);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Write API
    // ------------------------------------------------------------------

    /// Registers `label` to `owner` for `duration`, paying rent + premium at
    /// `cents_per_eth`. Requires a prior [`EnsSystem::commit`] older than
    /// [`MIN_COMMITMENT_AGE`]. If `resolve_to` is given, the resolver `addr`
    /// record is set in the same breath (the common "register + set address"
    /// flow).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        chain: &mut Chain,
        label: &Label,
        owner: Address,
        secret: u64,
        duration: Duration,
        cents_per_eth: u64,
        resolve_to: Option<Address>,
    ) -> Result<Receipt, EnsError> {
        let now = chain.now();
        if duration < MIN_REGISTRATION {
            return Err(EnsError::DurationTooShort);
        }
        if !self.available(label, now) {
            return Err(EnsError::NotAvailable {
                label: label.clone(),
                available_at: self
                    .registrar
                    .available_at(label.hash())
                    .unwrap_or(Timestamp(u64::MAX)),
            });
        }
        self.consume_commitment(now, Self::make_commitment(label, owner, secret))?;

        let (rent_usd, premium_usd) = self.price_usd(label, duration, now);
        let base_cost = usd_to_wei(rent_usd, cents_per_eth);
        let premium = usd_to_wei(premium_usd, cents_per_eth);
        let tx = chain.transfer(
            owner,
            self.controller_address,
            base_cost + premium,
            TxKind::ContractPayment {
                contract: "ens-controller".to_string(),
            },
        )?;

        let expires = now + duration;
        self.registrar.set_registration(Registration {
            label: label.clone(),
            registrant: owner,
            expiry: expires,
            registered_at: now,
        });
        let name = EnsName::from_label(label.clone());
        let node = name.namehash();
        self.registry.set_owner(node, owner, now);
        self.emit(
            chain,
            Some(tx),
            EnsEventKind::NameRegistered {
                label_hash: label.hash(),
                label: Some(label.clone()),
                owner,
                expires,
                base_cost,
                premium,
                legacy: false,
            },
        );
        if let Some(addr) = resolve_to {
            self.resolver.set_addr(node, addr);
            self.emit(chain, None, EnsEventKind::AddrChanged { node, addr });
        }
        Ok(Receipt {
            label: label.clone(),
            tx,
            base_cost,
            premium,
            expires,
        })
    }

    /// Renews `label` for `duration` more, paid by `payer`. Allowed any time
    /// before the grace period ends — including by someone other than the
    /// registrant (anyone can pay rent for a name, as on mainnet).
    pub fn renew(
        &mut self,
        chain: &mut Chain,
        label: &Label,
        payer: Address,
        duration: Duration,
        cents_per_eth: u64,
    ) -> Result<Receipt, EnsError> {
        let now = chain.now();
        let reg = self
            .registrar
            .registration(label.hash())
            .ok_or_else(|| EnsError::NotRegistered(label.clone()))?;
        if now >= reg.grace_end() {
            return Err(EnsError::PastGracePeriod(label.clone()));
        }
        let expires = reg.expiry + duration;
        let rent_usd = self.rents.rent_for(label, duration);
        let cost = usd_to_wei(rent_usd, cents_per_eth);
        let tx = chain.transfer(
            payer,
            self.controller_address,
            cost,
            TxKind::ContractPayment {
                contract: "ens-controller".to_string(),
            },
        )?;
        self.registrar.extend(label.hash(), expires);
        self.emit(
            chain,
            Some(tx),
            EnsEventKind::NameRenewed {
                label_hash: label.hash(),
                label: Some(label.clone()),
                expires,
                cost,
            },
        );
        Ok(Receipt {
            label: label.clone(),
            tx,
            base_cost: cost,
            premium: Wei::ZERO,
            expires,
        })
    }

    /// Transfers the registration NFT (and registry ownership) from the
    /// current registrant to `to`. Fails past expiry.
    pub fn transfer(
        &mut self,
        chain: &Chain,
        label: &Label,
        from: Address,
        to: Address,
    ) -> Result<(), EnsError> {
        let now = chain.now();
        let current = self
            .registrar
            .registrant_of(label.hash(), now)
            .ok_or_else(|| EnsError::NotRegistered(label.clone()))?;
        if current != from {
            return Err(EnsError::NotOwner(label.clone()));
        }
        self.registrar.set_registrant(label.hash(), to);
        let node = EnsName::from_label(label.clone()).namehash();
        self.registry.set_owner(node, to, now);
        self.emit(
            chain,
            None,
            EnsEventKind::NameTransferred {
                label_hash: label.hash(),
                from,
                to,
            },
        );
        Ok(())
    }

    /// Sets the resolver `addr` record for a second-level name. Only the
    /// *current* (unexpired) registrant may write — which is exactly why
    /// stale records linger after expiry: the old owner can no longer clear
    /// them, and has no incentive to anyway.
    pub fn set_addr(
        &mut self,
        chain: &Chain,
        label: &Label,
        caller: Address,
        addr: Address,
    ) -> Result<(), EnsError> {
        let now = chain.now();
        let current = self
            .registrar
            .registrant_of(label.hash(), now)
            .ok_or_else(|| EnsError::NotRegistered(label.clone()))?;
        if current != caller {
            return Err(EnsError::NotOwner(label.clone()));
        }
        let node = EnsName::from_label(label.clone()).namehash();
        self.resolver.set_addr(node, addr);
        self.emit(chain, None, EnsEventKind::AddrChanged { node, addr });
        Ok(())
    }

    /// Creates a subdomain `sub.label.eth` owned by `sub_owner`, optionally
    /// with an `addr` record. Only the parent's current registrant may call.
    pub fn create_subdomain(
        &mut self,
        chain: &Chain,
        label: &Label,
        caller: Address,
        sub_label: &Label,
        sub_owner: Address,
        resolve_to: Option<Address>,
    ) -> Result<ens_types::NameHash, EnsError> {
        let now = chain.now();
        let current = self
            .registrar
            .registrant_of(label.hash(), now)
            .ok_or_else(|| EnsError::NotRegistered(label.clone()))?;
        if current != caller {
            return Err(EnsError::NotOwner(label.clone()));
        }
        let parent = EnsName::from_label(label.clone()).namehash();
        let node = ens_types::name::namehash_labels([sub_label.as_str(), label.as_str(), "eth"]);
        self.registry.set_owner(node, sub_owner, now);
        self.emit(
            chain,
            None,
            EnsEventKind::SubnodeCreated {
                parent,
                node,
                label: sub_label.clone(),
                owner: sub_owner,
            },
        );
        if let Some(addr) = resolve_to {
            self.resolver.set_addr(node, addr);
            self.emit(chain, None, EnsEventKind::AddrChanged { node, addr });
        }
        Ok(node)
    }

    /// Imports a legacy (auction-era) registration during the 2020 contract
    /// migration: no payment, no commitment, expiry fixed by the migration
    /// deadline. When `publish_label` is false the emitted event carries
    /// **no plaintext label**, modelling pre-controller names whose strings
    /// never reached the index — these are the names the subgraph fails to
    /// recover (paper §3.1).
    pub fn import_legacy(
        &mut self,
        chain: &Chain,
        label: &Label,
        owner: Address,
        expiry: Timestamp,
        resolve_to: Option<Address>,
    ) -> Result<(), EnsError> {
        self.import_legacy_with(chain, label, owner, expiry, resolve_to, false)
    }

    /// [`EnsSystem::import_legacy`] with control over whether the event
    /// publishes the plaintext label (the migration tooling published most
    /// names; a residue stayed hash-only).
    pub fn import_legacy_with(
        &mut self,
        chain: &Chain,
        label: &Label,
        owner: Address,
        expiry: Timestamp,
        resolve_to: Option<Address>,
        publish_label: bool,
    ) -> Result<(), EnsError> {
        let now = chain.now();
        if !self.available(label, now) {
            return Err(EnsError::NotAvailable {
                label: label.clone(),
                available_at: self
                    .registrar
                    .available_at(label.hash())
                    .unwrap_or(Timestamp(u64::MAX)),
            });
        }
        self.registrar.set_registration(Registration {
            label: label.clone(),
            registrant: owner,
            expiry,
            registered_at: now,
        });
        let node = EnsName::from_label(label.clone()).namehash();
        self.registry.set_owner(node, owner, now);
        self.emit(
            chain,
            None,
            EnsEventKind::NameRegistered {
                label_hash: label.hash(),
                label: publish_label.then(|| label.clone()),
                owner,
                expires: expiry,
                base_cost: Wei::ZERO,
                premium: Wei::ZERO,
                legacy: true,
            },
        );
        if let Some(addr) = resolve_to {
            self.resolver.set_addr(node, addr);
            self.emit(chain, None, EnsEventKind::AddrChanged { node, addr });
        }
        Ok(())
    }

    fn emit(&mut self, chain: &Chain, tx: Option<TxHash>, kind: EnsEventKind) {
        self.events.push(EnsEvent {
            id: self.events.len() as u64,
            block: chain.block_number(),
            timestamp: chain.now(),
            tx,
            kind,
        });
    }
}

/// Convenience: full commit–wait–register flow for tests and simple callers.
/// Advances the chain clock by [`MIN_COMMITMENT_AGE`].
#[allow(clippy::too_many_arguments)]
pub fn commit_and_register(
    ens: &mut EnsSystem,
    chain: &mut Chain,
    label: &Label,
    owner: Address,
    secret: u64,
    duration: Duration,
    cents_per_eth: u64,
    resolve_to: Option<Address>,
) -> Result<Receipt, EnsError> {
    let commitment = EnsSystem::make_commitment(label, owner, secret);
    ens.commit(chain, commitment);
    chain.advance(MIN_COMMITMENT_AGE);
    ens.register(
        chain,
        label,
        owner,
        secret,
        duration,
        cents_per_eth,
        resolve_to,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::{GRACE_PERIOD, PREMIUM_PERIOD};

    const PRICE: u64 = 200_000; // $2,000 / ETH

    fn setup() -> (EnsSystem, Chain, Address) {
        let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
        let alice = Address::derive(b"alice");
        chain.mint(alice, Wei::from_eth(1_000));
        (EnsSystem::new(), chain, alice)
    }

    fn label(s: &str) -> Label {
        Label::parse(s).unwrap()
    }

    #[test]
    fn register_sets_ownership_and_resolution() {
        let (mut ens, mut chain, alice) = setup();
        let gold = label("gold");
        let receipt = commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        assert_eq!(receipt.premium, Wei::ZERO);
        // "gold" is 4 chars → $160/yr, at $2,000/ETH that is 0.08 ETH.
        assert_eq!(receipt.base_cost, Wei::from_milli_eth(80));
        assert_eq!(ens.registrant_of(&gold, chain.now()), Some(alice));
        let name = EnsName::parse("gold.eth").unwrap();
        assert_eq!(ens.resolve(&name), Some(alice));
    }

    #[test]
    fn register_without_commitment_fails() {
        let (mut ens, mut chain, alice) = setup();
        let err = ens
            .register(
                &mut chain,
                &label("gold"),
                alice,
                1,
                Duration::from_years(1),
                PRICE,
                None,
            )
            .unwrap_err();
        assert_eq!(err, EnsError::CommitmentNotFound);
    }

    #[test]
    fn commitment_age_window_is_enforced() {
        let (mut ens, mut chain, alice) = setup();
        let gold = label("gold");
        let c = EnsSystem::make_commitment(&gold, alice, 7);
        ens.commit(&chain, c);
        // Too new.
        let err = ens
            .register(
                &mut chain,
                &gold,
                alice,
                7,
                Duration::from_years(1),
                PRICE,
                None,
            )
            .unwrap_err();
        assert_eq!(err, EnsError::CommitmentTooNew);
        // Too old.
        chain.advance(MAX_COMMITMENT_AGE + Duration::from_secs(1));
        let err = ens
            .register(
                &mut chain,
                &gold,
                alice,
                7,
                Duration::from_years(1),
                PRICE,
                None,
            )
            .unwrap_err();
        assert_eq!(err, EnsError::CommitmentTooOld);
    }

    #[test]
    fn registered_names_are_unavailable_until_grace_ends() {
        let (mut ens, mut chain, alice) = setup();
        let bob = Address::derive(b"bob");
        chain.mint(bob, Wei::from_eth(1_000_000));
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        // Bob cannot take it while held.
        let err = commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            bob,
            2,
            Duration::from_years(1),
            PRICE,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EnsError::NotAvailable { .. }));

        // Jump past expiry + grace + premium window: Bob can take it cheaply.
        chain.advance(Duration::from_years(1) + GRACE_PERIOD + PREMIUM_PERIOD);
        let receipt = commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            bob,
            3,
            Duration::from_years(1),
            PRICE,
            Some(bob),
        )
        .unwrap();
        assert_eq!(receipt.premium, Wei::ZERO);
        assert_eq!(ens.registrant_of(&gold, chain.now()), Some(bob));
    }

    #[test]
    fn reregistration_during_premium_window_costs_a_premium() {
        let (mut ens, mut chain, alice) = setup();
        let whale = Address::derive(b"whale");
        chain.mint(whale, Wei::from_eth(100_000));
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        // 10 days into the premium window.
        chain.advance(Duration::from_years(1) + GRACE_PERIOD + Duration::from_days(10));
        let (_, premium_usd) = ens.price_usd(&gold, Duration::from_years(1), chain.now());
        // 100M * 2^-10 ≈ $97,656 minus offset.
        assert!(premium_usd > UsdCents::from_dollars(90_000));
        assert!(premium_usd < UsdCents::from_dollars(100_000));

        let receipt = commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            whale,
            9,
            Duration::from_years(1),
            PRICE,
            Some(whale),
        )
        .unwrap();
        assert!(receipt.premium > Wei::ZERO);
    }

    #[test]
    fn renewal_works_during_grace_but_not_after() {
        let (mut ens, mut chain, alice) = setup();
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        // 30 days into grace: renewal still allowed.
        chain.advance(Duration::from_years(1) + Duration::from_days(30));
        let receipt = ens
            .renew(&mut chain, &gold, alice, Duration::from_years(1), PRICE)
            .unwrap();
        assert!(receipt.expires > chain.now());

        // Let it lapse fully this time.
        chain.advance(Duration::from_years(2));
        let err = ens
            .renew(&mut chain, &gold, alice, Duration::from_years(1), PRICE)
            .unwrap_err();
        assert_eq!(err, EnsError::PastGracePeriod(gold));
    }

    #[test]
    fn resolver_record_survives_expiry_until_overwritten() {
        let (mut ens, mut chain, alice) = setup();
        let bob = Address::derive(b"bob");
        chain.mint(bob, Wei::from_eth(1_000));
        let gold = label("gold");
        let name = EnsName::parse("gold.eth").unwrap();
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        // Long after expiry, the name still resolves to Alice — the paper's
        // central hazard.
        chain.advance(Duration::from_years(3));
        assert_eq!(ens.registrant_of(&gold, chain.now()), None);
        assert_eq!(ens.resolve(&name), Some(alice));

        // Bob re-registers and overwrites the record: silent switch.
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            bob,
            2,
            Duration::from_years(1),
            PRICE,
            Some(bob),
        )
        .unwrap();
        assert_eq!(ens.resolve(&name), Some(bob));
    }

    #[test]
    fn expired_owner_cannot_update_records() {
        let (mut ens, mut chain, alice) = setup();
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();
        chain.advance(Duration::from_years(2));
        let err = ens
            .set_addr(&chain, &gold, alice, Address::derive(b"new"))
            .unwrap_err();
        assert_eq!(err, EnsError::NotRegistered(gold));
    }

    #[test]
    fn transfer_requires_current_ownership() {
        let (mut ens, mut chain, alice) = setup();
        let bob = Address::derive(b"bob");
        let carol = Address::derive(b"carol");
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();

        assert_eq!(
            ens.transfer(&chain, &gold, bob, carol),
            Err(EnsError::NotOwner(gold.clone()))
        );
        ens.transfer(&chain, &gold, alice, bob).unwrap();
        assert_eq!(ens.registrant_of(&gold, chain.now()), Some(bob));
        // Registry owner follows the NFT.
        let node = EnsName::from_label(gold).namehash();
        assert_eq!(ens.registry().owner(node), Some(bob));
    }

    #[test]
    fn short_durations_are_rejected() {
        let (mut ens, mut chain, alice) = setup();
        let err = commit_and_register(
            &mut ens,
            &mut chain,
            &label("gold"),
            alice,
            1,
            Duration::from_days(27),
            PRICE,
            None,
        )
        .unwrap_err();
        assert_eq!(err, EnsError::DurationTooShort);
    }

    #[test]
    fn payment_failure_leaves_no_state() {
        let (mut ens, mut chain, _) = setup();
        let pauper = Address::derive(b"pauper");
        let gold = label("gold");
        let err = commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            pauper,
            1,
            Duration::from_years(1),
            PRICE,
            Some(pauper),
        )
        .unwrap_err();
        assert!(matches!(err, EnsError::Payment(_)));
        assert!(ens.available(&gold, chain.now()));
        assert_eq!(ens.resolve(&EnsName::parse("gold.eth").unwrap()), None);
    }

    #[test]
    fn legacy_import_emits_nameless_event() {
        let (mut ens, chain, alice) = setup();
        let gold = label("gold");
        ens.import_legacy(
            &chain,
            &gold,
            alice,
            Timestamp::from_ymd(2021, 5, 1),
            Some(alice),
        )
        .unwrap();
        let ev = &ens.events()[0];
        match &ev.kind {
            EnsEventKind::NameRegistered { label, premium, .. } => {
                assert!(label.is_none());
                assert_eq!(*premium, Wei::ZERO);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn subdomains_are_created_under_live_parents_only() {
        let (mut ens, mut chain, alice) = setup();
        let bob = Address::derive(b"bob");
        let gold = label("gold");
        commit_and_register(
            &mut ens,
            &mut chain,
            &gold,
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();
        let sub = Label::parse_any("pay").unwrap();
        let node = ens
            .create_subdomain(&chain, &gold, alice, &sub, bob, Some(bob))
            .unwrap();
        assert_eq!(ens.registry().owner(node), Some(bob));
        assert_eq!(node, ens_types::namehash("pay.gold.eth"));

        chain.advance(Duration::from_years(2));
        let err = ens
            .create_subdomain(&chain, &gold, alice, &sub, bob, None)
            .unwrap_err();
        assert_eq!(err, EnsError::NotRegistered(gold));
    }

    #[test]
    fn events_are_ordered_and_dense() {
        let (mut ens, mut chain, alice) = setup();
        commit_and_register(
            &mut ens,
            &mut chain,
            &label("gold"),
            alice,
            1,
            Duration::from_years(1),
            PRICE,
            Some(alice),
        )
        .unwrap();
        ens.renew(
            &mut chain,
            &label("gold"),
            alice,
            Duration::from_years(1),
            PRICE,
        )
        .unwrap();
        let ids: Vec<u64> = ens.events().iter().map(|e| e.id).collect();
        assert_eq!(ids, (0..ids.len() as u64).collect::<Vec<_>>());
    }
}
