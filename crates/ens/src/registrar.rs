//! The `.eth` base registrar: who holds which second-level name, and until
//! when.
//!
//! Modelled on the production `BaseRegistrarImplementation`: registrations
//! are ERC-721 tokens keyed by label hash with an expiry timestamp, a
//! 90-day grace period during which only the old registrant can renew, and
//! availability for anyone afterwards.

use std::collections::HashMap;

use ens_types::{Address, Label, LabelHash, Timestamp};
use serde::{Deserialize, Serialize};

use crate::pricing::GRACE_PERIOD;

/// One live (or lapsed but remembered) registration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// The plaintext label (kept for simulation introspection; on the real
    /// chain only the hash exists).
    pub label: Label,
    /// Current registrant (NFT holder).
    pub registrant: Address,
    /// Expiry timestamp. The grace period runs for 90 days after this.
    pub expiry: Timestamp,
    /// When the *current* registrant registered the name.
    pub registered_at: Timestamp,
}

impl Registration {
    /// End of the grace period: the moment the name becomes registrable by
    /// anyone (and the premium auction opens).
    pub fn grace_end(&self) -> Timestamp {
        self.expiry + GRACE_PERIOD
    }

    /// True while the registration confers ownership (not yet past grace).
    pub fn is_held_at(&self, now: Timestamp) -> bool {
        now < self.grace_end()
    }

    /// True while the name actually resolves ownership rights (pre-expiry).
    pub fn is_active_at(&self, now: Timestamp) -> bool {
        now < self.expiry
    }
}

/// The base registrar state machine.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BaseRegistrar {
    registrations: HashMap<LabelHash, Registration>,
}

impl BaseRegistrar {
    /// Creates an empty registrar.
    pub fn new() -> BaseRegistrar {
        BaseRegistrar::default()
    }

    /// The registration record for `label_hash`, lapsed or not.
    pub fn registration(&self, label_hash: LabelHash) -> Option<&Registration> {
        self.registrations.get(&label_hash)
    }

    /// The current registrant, honouring expiry semantics: like the
    /// production `ownerOf`, this is `None` once the name expires (even
    /// during grace, when the old registrant can still renew but no longer
    /// "owns" the token for resolution purposes).
    pub fn registrant_of(&self, label_hash: LabelHash, now: Timestamp) -> Option<Address> {
        self.registrations
            .get(&label_hash)
            .filter(|r| r.is_active_at(now))
            .map(|r| r.registrant)
    }

    /// True if anyone may register the name right now (never registered, or
    /// past expiry + grace).
    pub fn available(&self, label_hash: LabelHash, now: Timestamp) -> bool {
        match self.registrations.get(&label_hash) {
            None => true,
            Some(r) => now >= r.grace_end(),
        }
    }

    /// The moment the name (if currently taken) becomes available.
    pub fn available_at(&self, label_hash: LabelHash) -> Option<Timestamp> {
        self.registrations.get(&label_hash).map(|r| r.grace_end())
    }

    /// Records a registration. The caller (controller) must have verified
    /// availability and taken payment.
    pub(crate) fn set_registration(&mut self, registration: Registration) {
        self.registrations
            .insert(registration.label.hash(), registration);
    }

    /// Extends an existing registration's expiry. Caller must have verified
    /// the grace window.
    pub(crate) fn extend(&mut self, label_hash: LabelHash, new_expiry: Timestamp) {
        if let Some(r) = self.registrations.get_mut(&label_hash) {
            r.expiry = new_expiry;
        }
    }

    /// Reassigns the registrant (ERC-721 transfer). Caller must have
    /// verified ownership.
    pub(crate) fn set_registrant(&mut self, label_hash: LabelHash, to: Address) {
        if let Some(r) = self.registrations.get_mut(&label_hash) {
            r.registrant = to;
        }
    }

    /// All registrations (simulation ground truth; not part of the
    /// measurable surface).
    pub fn iter(&self) -> impl Iterator<Item = &Registration> {
        self.registrations.values()
    }

    /// Number of label hashes ever registered.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// True if no name was ever registered.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ens_types::Duration;

    fn label(s: &str) -> Label {
        Label::parse(s).unwrap()
    }

    fn reg(l: &str, who: &str, expiry: Timestamp) -> Registration {
        Registration {
            label: label(l),
            registrant: Address::derive(who.as_bytes()),
            expiry,
            registered_at: Timestamp(0),
        }
    }

    #[test]
    fn fresh_names_are_available() {
        let r = BaseRegistrar::new();
        assert!(r.available(label("gold").hash(), Timestamp(0)));
        assert!(r.is_empty());
    }

    #[test]
    fn grace_period_blocks_availability_for_90_days() {
        let mut r = BaseRegistrar::new();
        let expiry = Timestamp::from_ymd(2022, 1, 1);
        r.set_registration(reg("gold", "alice", expiry));
        let h = label("gold").hash();

        assert!(!r.available(h, expiry - Duration::from_secs(1)));
        // Expired but in grace: still unavailable.
        assert!(!r.available(h, expiry));
        assert!(!r.available(h, expiry + Duration::from_days(89)));
        // One second before grace end: unavailable; at grace end: available.
        assert!(!r.available(h, expiry + Duration::from_days(90) - Duration::from_secs(1)));
        assert!(r.available(h, expiry + Duration::from_days(90)));
    }

    #[test]
    fn registrant_of_is_none_after_expiry() {
        let mut r = BaseRegistrar::new();
        let expiry = Timestamp::from_ymd(2022, 1, 1);
        r.set_registration(reg("gold", "alice", expiry));
        let h = label("gold").hash();
        assert_eq!(
            r.registrant_of(h, expiry - Duration::from_secs(1)),
            Some(Address::derive(b"alice"))
        );
        // During grace the token no longer resolves an owner...
        assert_eq!(r.registrant_of(h, expiry + Duration::from_days(1)), None);
        // ...but the record still exists, so the old registrant can renew.
        assert!(r
            .registration(h)
            .unwrap()
            .is_held_at(expiry + Duration::from_days(1)));
    }

    #[test]
    fn extend_moves_expiry() {
        let mut r = BaseRegistrar::new();
        let expiry = Timestamp::from_ymd(2022, 1, 1);
        r.set_registration(reg("gold", "alice", expiry));
        let h = label("gold").hash();
        r.extend(h, expiry + Duration::from_years(1));
        assert!(r
            .registrant_of(h, expiry + Duration::from_days(10))
            .is_some());
    }

    #[test]
    fn available_at_reports_grace_end() {
        let mut r = BaseRegistrar::new();
        let expiry = Timestamp::from_ymd(2022, 1, 1);
        r.set_registration(reg("gold", "alice", expiry));
        assert_eq!(
            r.available_at(label("gold").hash()),
            Some(expiry + GRACE_PERIOD)
        );
        assert_eq!(r.available_at(label("other").hash()), None);
    }
}
