//! Registration pricing: yearly rent by label length plus the temporary
//! premium Dutch auction for recently-released names.
//!
//! Mirrors the production ENS `StablePriceOracle` +
//! `ExponentialPremiumPriceOracle`: rent is quoted in USD per year
//! ($640 / $160 / $5 for 3 / 4 / 5+ character labels) and the premium starts
//! at 100,000,000 USD when a name leaves its grace period, halving every day
//! for 21 days, offset so it reaches exactly zero at day 21. The paper's §2.1
//! calls this mechanism out as unique to ENS — it temporarily favours the
//! deepest pockets over the fastest bots, and Fig 3's re-registration delay
//! distribution is shaped by it.

use ens_types::{Duration, Label, UsdCents, Wei, WEI_PER_ETH};
use serde::{Deserialize, Serialize};

/// The 90-day window after expiry in which only the previous registrant can
/// renew.
pub const GRACE_PERIOD: Duration = Duration::from_days(90);

/// Length of the premium Dutch auction after the grace period ends.
pub const PREMIUM_PERIOD: Duration = Duration::from_days(21);

/// Premium at the moment the auction opens: 100,000,000 USD, in cents.
pub const PREMIUM_START_CENTS: u128 = 100_000_000 * 100;

/// Minimum registration duration (28 days, as in the production controller).
pub const MIN_REGISTRATION: Duration = Duration::from_days(28);

/// Yearly rent schedule in USD cents, by label length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RentSchedule {
    /// Price per year for 3-character labels.
    pub three_char: UsdCents,
    /// Price per year for 4-character labels.
    pub four_char: UsdCents,
    /// Price per year for labels of 5+ characters.
    pub five_plus: UsdCents,
}

impl Default for RentSchedule {
    fn default() -> Self {
        RentSchedule {
            three_char: UsdCents::from_dollars(640),
            four_char: UsdCents::from_dollars(160),
            five_plus: UsdCents::from_dollars(5),
        }
    }
}

impl RentSchedule {
    /// Yearly rent for `label`.
    pub fn yearly_rent(&self, label: &Label) -> UsdCents {
        match label.len() {
            3 => self.three_char,
            4 => self.four_char,
            _ => self.five_plus,
        }
    }

    /// Rent for an arbitrary duration, pro-rated by the second
    /// (365-day years, like the production oracle).
    pub fn rent_for(&self, label: &Label, duration: Duration) -> UsdCents {
        let yearly = self.yearly_rent(label).0;
        UsdCents(yearly * duration.as_secs() as u128 / Duration::from_years(1).as_secs() as u128)
    }
}

/// The decaying premium, `elapsed` after the grace period ended.
///
/// `premium(t) = START * 2^(-t/1day) - START * 2^(-21)`, clamped at zero —
/// i.e. exactly zero from day 21 on. Continuous (per-second) decay, matching
/// the production exponential oracle.
pub fn premium_after_grace(elapsed: Duration) -> UsdCents {
    if elapsed >= PREMIUM_PERIOD {
        return UsdCents::ZERO;
    }
    let days = elapsed.as_days_f64();
    let start = PREMIUM_START_CENTS as f64;
    let offset = start * (0.5f64).powi(PREMIUM_PERIOD.as_days() as i32);
    let value = start * (0.5f64).powf(days) - offset;
    if value <= 0.0 {
        UsdCents::ZERO
    } else {
        UsdCents(value as u128)
    }
}

/// Converts a USD amount to wei at `cents_per_eth` (USD cents per 1 ETH),
/// rounding up so the payer never underpays.
pub fn usd_to_wei(amount: UsdCents, cents_per_eth: u64) -> Wei {
    if amount.is_zero() {
        return Wei::ZERO;
    }
    let numerator = amount.0 * WEI_PER_ETH;
    let denom = cents_per_eth as u128;
    Wei(numerator.div_ceil(denom))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(s: &str) -> Label {
        Label::parse(s).unwrap()
    }

    #[test]
    fn rent_tiers_match_production_schedule() {
        let s = RentSchedule::default();
        assert_eq!(s.yearly_rent(&label("abc")), UsdCents::from_dollars(640));
        assert_eq!(s.yearly_rent(&label("abcd")), UsdCents::from_dollars(160));
        assert_eq!(s.yearly_rent(&label("abcde")), UsdCents::from_dollars(5));
        assert_eq!(
            s.yearly_rent(&label("a-very-long-name")),
            UsdCents::from_dollars(5)
        );
    }

    #[test]
    fn rent_pro_rates_by_duration() {
        let s = RentSchedule::default();
        assert_eq!(
            s.rent_for(&label("hello"), Duration::from_years(2)),
            UsdCents::from_dollars(10)
        );
        // Half a year of a $5/yr name is $2.50.
        let half = Duration::from_secs(Duration::from_years(1).as_secs() / 2);
        assert_eq!(s.rent_for(&label("hello"), half), UsdCents(250));
    }

    #[test]
    fn premium_starts_near_100m_usd() {
        let p = premium_after_grace(Duration::ZERO);
        // START minus the day-21 offset (~$47.68).
        let expected = PREMIUM_START_CENTS - (PREMIUM_START_CENTS >> 21);
        let diff = p.0.abs_diff(expected);
        assert!(diff <= 1, "premium at t=0 was {p}, expected ~{expected}");
    }

    #[test]
    fn premium_halves_daily() {
        let d1 = premium_after_grace(Duration::from_days(1)).0 as f64;
        let d2 = premium_after_grace(Duration::from_days(2)).0 as f64;
        // After removing the offset the ratio is exactly 2; with the offset
        // it is still within a hair of 2 during the first days.
        assert!((d1 / d2 - 2.0).abs() < 0.001, "d1/d2 = {}", d1 / d2);
    }

    #[test]
    fn premium_is_monotone_decreasing() {
        let mut last = premium_after_grace(Duration::ZERO);
        for hours in 1..=(21 * 24) {
            let p = premium_after_grace(Duration::from_secs(hours * 3600));
            assert!(p <= last, "premium increased at hour {hours}");
            last = p;
        }
    }

    #[test]
    fn premium_hits_zero_at_day_21_exactly() {
        assert_eq!(premium_after_grace(PREMIUM_PERIOD), UsdCents::ZERO);
        assert_eq!(
            premium_after_grace(PREMIUM_PERIOD + Duration::from_days(400)),
            UsdCents::ZERO
        );
        // One hour before the end it is still positive.
        let almost = premium_after_grace(Duration::from_secs(21 * 86_400 - 3600));
        assert!(almost > UsdCents::ZERO);
    }

    #[test]
    fn usd_to_wei_rounds_up() {
        // $1 at $2,000/ETH = 0.0005 ETH exactly.
        assert_eq!(
            usd_to_wei(UsdCents::from_dollars(1), 200_000),
            Wei(WEI_PER_ETH / 2000)
        );
        // 1 cent at $3/ETH = 1/300 ETH, which doesn't divide evenly → round up.
        let w = usd_to_wei(UsdCents(1), 300);
        assert_eq!(w, Wei(WEI_PER_ETH.div_ceil(300)));
        assert_eq!(usd_to_wei(UsdCents::ZERO, 300), Wei::ZERO);
    }
}
