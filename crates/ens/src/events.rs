//! On-chain ENS events, as later indexed by `ens-subgraph`.

use ens_types::{Address, BlockNumber, Label, LabelHash, NameHash, Timestamp, TxHash, Wei};
use serde::{Deserialize, Serialize};

/// A single ENS event with its chain coordinates.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnsEvent {
    /// Monotone event id (log index across the whole chain).
    pub id: u64,
    /// Block the event was emitted in.
    pub block: BlockNumber,
    /// Emission time (the block timestamp).
    pub timestamp: Timestamp,
    /// The transaction that carried the payment, when the operation moved
    /// value (registrations and renewals do; transfers and record updates
    /// are value-free contract calls).
    pub tx: Option<TxHash>,
    /// What happened.
    pub kind: EnsEventKind,
}

/// The event payload.
///
/// Registrar-level events identify names only by their
/// [`LabelHash`] — exactly the property that makes comprehensive crawling
/// hard (paper §3.1). Controller-level registrations *also* carry the
/// plaintext label (the production `NameRegistered(string name, ...)` event
/// does too), which is what the subgraph uses to recover readable names.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnsEventKind {
    /// A name was registered through the controller.
    NameRegistered {
        /// keccak-256 of the label (the ERC-721 token id).
        label_hash: LabelHash,
        /// Plaintext label. `None` for legacy/auction-era imports, whose
        /// registrations predate the controller's string-bearing event.
        label: Option<Label>,
        /// The new registrant.
        owner: Address,
        /// When the registration lapses.
        expires: Timestamp,
        /// Base rent paid (wei).
        base_cost: Wei,
        /// Temporary-premium portion paid (wei); non-zero only within the
        /// 21-day Dutch auction.
        premium: Wei,
        /// True for auction-era registrations imported at the 2020 contract
        /// migration (no payment, no commitment).
        legacy: bool,
    },
    /// A registration was extended.
    NameRenewed {
        /// keccak-256 of the label.
        label_hash: LabelHash,
        /// Plaintext label when known.
        label: Option<Label>,
        /// New expiry.
        expires: Timestamp,
        /// Rent paid (wei).
        cost: Wei,
    },
    /// The registration NFT changed hands (ERC-721 `Transfer`).
    NameTransferred {
        /// keccak-256 of the label.
        label_hash: LabelHash,
        /// Previous registrant.
        from: Address,
        /// New registrant.
        to: Address,
    },
    /// A resolver `addr` record was set or changed.
    AddrChanged {
        /// The namehash whose record changed.
        node: NameHash,
        /// The new resolution target.
        addr: Address,
    },
    /// An address claimed a primary (reverse) name.
    ReverseClaimed {
        /// The claiming address.
        addr: Address,
        /// The primary name it points at (by full text, as the reverse
        /// resolver stores the string).
        name: String,
    },
    /// A subdomain node was created under an existing name.
    SubnodeCreated {
        /// Parent namehash.
        parent: NameHash,
        /// The subdomain's own namehash.
        node: NameHash,
        /// Subdomain label.
        label: Label,
        /// Owner of the new node.
        owner: Address,
    },
}

impl EnsEvent {
    /// The label hash this event concerns, if it is a registrar-level event.
    pub fn label_hash(&self) -> Option<LabelHash> {
        match &self.kind {
            EnsEventKind::NameRegistered { label_hash, .. }
            | EnsEventKind::NameRenewed { label_hash, .. }
            | EnsEventKind::NameTransferred { label_hash, .. } => Some(*label_hash),
            EnsEventKind::AddrChanged { .. }
            | EnsEventKind::ReverseClaimed { .. }
            | EnsEventKind::SubnodeCreated { .. } => None,
        }
    }
}
