//! Property tests over the ENS protocol state machine: random operation
//! sequences must never violate the protocol invariants, whatever order
//! users, attackers, and the clock interleave in.

use ens_registry::{commit_and_register, EnsError, EnsSystem, GRACE_PERIOD};
use ens_types::{Address, Duration, EnsName, Label, Timestamp, Wei};
use proptest::prelude::*;
use sim_chain::Chain;

const PRICE: u64 = 200_000;

#[derive(Clone, Debug)]
enum Op {
    /// Actor i tries to register name j for `years`.
    Register { actor: u8, name: u8, years: u8 },
    /// Actor i tries to renew name j.
    Renew { actor: u8, name: u8 },
    /// Actor i tries to transfer name j to actor k.
    Transfer { actor: u8, name: u8, to: u8 },
    /// Actor i tries to repoint name j to actor k's wallet.
    SetAddr { actor: u8, name: u8, to: u8 },
    /// Time passes.
    Advance { days: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u8..5, 1u8..3).prop_map(|(actor, name, years)| Op::Register {
            actor,
            name,
            years
        }),
        (0u8..6, 0u8..5).prop_map(|(actor, name)| Op::Renew { actor, name }),
        (0u8..6, 0u8..5, 0u8..6).prop_map(|(actor, name, to)| Op::Transfer { actor, name, to }),
        (0u8..6, 0u8..5, 0u8..6).prop_map(|(actor, name, to)| Op::SetAddr { actor, name, to }),
        (1u16..400).prop_map(|days| Op::Advance { days }),
    ]
}

fn actor(i: u8) -> Address {
    Address::derive_indexed("prop-actor", i as u64)
}

fn label(j: u8) -> Label {
    Label::parse(&format!("prop-name-{j}")).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn protocol_invariants_hold_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
        let mut ens = EnsSystem::new();
        for i in 0..6 {
            chain.mint(actor(i), Wei::from_eth(1_000_000_000));
        }
        let mut secret = 0u64;

        for op in ops {
            match op {
                Op::Register { actor: a, name, years } => {
                    secret += 1;
                    let l = label(name);
                    let was_available = ens.available(&l, chain.now());
                    let result = commit_and_register(
                        &mut ens, &mut chain, &l, actor(a), secret,
                        Duration::from_years(years as u64), PRICE, Some(actor(a)),
                    );
                    // Registration succeeds iff the name was available
                    // (commit_and_register advances the clock by 60s, which
                    // can only make it *more* available).
                    match result {
                        Ok(receipt) => {
                            // (If the name looked taken, the 60s commit wait
                            // must have crossed the grace-end boundary.)
                            let legal = was_available || ens.registration(&l).is_some();
                            prop_assert!(legal, "registered an unavailable name");
                            prop_assert!(receipt.expires > chain.now());
                            prop_assert_eq!(
                                ens.registrant_of(&l, chain.now()),
                                Some(actor(a))
                            );
                        }
                        Err(EnsError::NotAvailable { .. }) => {
                            prop_assert!(!was_available);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Renew { actor: a, name } => {
                    let l = label(name);
                    let before = ens.registration(&l).map(|r| r.expiry);
                    match ens.renew(&mut chain, &l, actor(a), Duration::from_years(1), PRICE) {
                        Ok(receipt) => {
                            // Renewal is only legal before grace end, and
                            // always extends by exactly one year.
                            let prev = before.expect("renewed name had a registration");
                            prop_assert!(chain.now() < prev + GRACE_PERIOD);
                            prop_assert_eq!(receipt.expires, prev + Duration::from_years(1));
                        }
                        Err(EnsError::NotRegistered(_)) => {
                            prop_assert!(before.is_none());
                        }
                        Err(EnsError::PastGracePeriod(_)) => {
                            let prev = before.expect("past-grace implies registered");
                            prop_assert!(chain.now() >= prev + GRACE_PERIOD);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::Transfer { actor: a, name, to } => {
                    let l = label(name);
                    let holder = ens.registrant_of(&l, chain.now());
                    let result = ens.transfer(&chain, &l, actor(a), actor(to));
                    match result {
                        Ok(()) => {
                            prop_assert_eq!(holder, Some(actor(a)));
                            prop_assert_eq!(
                                ens.registrant_of(&l, chain.now()),
                                Some(actor(to))
                            );
                        }
                        Err(EnsError::NotOwner(_)) => {
                            prop_assert!(holder.is_some() && holder != Some(actor(a)));
                        }
                        Err(EnsError::NotRegistered(_)) => {
                            prop_assert!(holder.is_none());
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e}"),
                    }
                }
                Op::SetAddr { actor: a, name, to } => {
                    let l = label(name);
                    let holder = ens.registrant_of(&l, chain.now());
                    let ensname = EnsName::from_label(l.clone());
                    let before = ens.resolve(&ensname);
                    match ens.set_addr(&chain, &l, actor(a), actor(to)) {
                        Ok(()) => {
                            prop_assert_eq!(holder, Some(actor(a)));
                            prop_assert_eq!(ens.resolve(&ensname), Some(actor(to)));
                        }
                        Err(_) => {
                            // Rejected writes never change the record.
                            prop_assert_eq!(ens.resolve(&ensname), before);
                        }
                    }
                }
                Op::Advance { days } => {
                    chain.advance(Duration::from_days(days as u64));
                }
            }

            // Global invariants after every step.
            for j in 0..5 {
                let l = label(j);
                let now = chain.now();
                // A name is never both available and actively owned.
                if ens.available(&l, now) {
                    prop_assert_eq!(ens.registrant_of(&l, now), None);
                }
                // Resolver records persist: once a name resolved somewhere,
                // it never stops resolving (the paper's core hazard).
                let ensname = EnsName::from_label(l.clone());
                if ens.registration(&l).is_some() {
                    prop_assert!(
                        ens.resolve(&ensname).is_some(),
                        "registered name stopped resolving"
                    );
                }
                // The premium is zero iff outside the auction window.
                let (_, premium) = ens.price_usd(&l, Duration::from_years(1), now);
                if let Some(reg) = ens.registration(&l) {
                    let auction_start = reg.expiry + GRACE_PERIOD;
                    let auction_end = auction_start + Duration::from_days(21);
                    if now < auction_start || now >= auction_end {
                        prop_assert!(premium.is_zero(), "premium outside auction");
                    } else if now + Duration::from_secs(120) < auction_end {
                        // In the auction's final seconds the continuous decay
                        // rounds below one cent; avoid asserting there.
                        prop_assert!(!premium.is_zero(), "no premium inside auction");
                    }
                }
            }
            // Ledger conservation, always.
            prop_assert_eq!(chain.total_balance(), chain.total_minted());
        }
    }
}
