//! The daemon's headline guarantees, exercised end to end over real
//! sockets: every reply is byte-identical at any worker count (and equal
//! to the in-process reference), graceful shutdown completes in-flight
//! requests before closing the listener, and adversarial inputs come
//! back as typed error replies — never a panic, never a hung worker.
//!
//! The dataset under test is chaos-degraded (collected with the `mixed`
//! fault profile riding a `degrade` policy), so the equivalence gate
//! also covers the gap-bearing shapes a real resumed crawl produces.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};

use ens_dropcatch::{CrawlConfig, Dataset, FailurePolicy, QueryError};
use ens_serve::http::Server;
use ens_serve::{Request, ServeHandle, ServeState};
use ens_subgraph::SubgraphConfig;
use ens_types::FaultProfile;
use workload::WorldConfig;

/// A chaos-degraded dataset: gaps and lost items included.
fn degraded_dataset() -> Dataset {
    let world = WorldConfig::small().with_names(300).with_seed(77).build();
    let sg = world.subgraph(SubgraphConfig::default());
    let scan = world.etherscan();
    let config = CrawlConfig {
        chaos: Some(FaultProfile::named("mixed", 4242).expect("mixed is a named profile")),
        failure: FailurePolicy::degrade(),
        subgraph_page_size: 32,
        txlist_page_size: 16,
        market_page_size: 8,
        ..CrawlConfig::with_threads(2)
    };
    let (ds, _) = Dataset::try_collect_with(
        &sg,
        &scan,
        world.opensea(),
        world.observation_end(),
        &config,
    )
    .expect("degrade policy completes under chaos");
    ds
}

fn shared_state() -> Arc<ServeState> {
    static STATE: OnceLock<Arc<ServeState>> = OnceLock::new();
    Arc::clone(STATE.get_or_init(|| Arc::new(ServeState::build(degraded_dataset(), 2))))
}

/// A request mix touching every endpoint, both hit and miss paths.
fn request_targets(state: &ServeState) -> Vec<String> {
    let mut targets = Vec::new();
    let names: Vec<String> = state
        .dataset
        .domains
        .iter()
        .filter_map(|d| d.name.as_ref().map(|n| n.to_full()))
        .take(40)
        .collect();
    for name in &names {
        targets.push(format!("/name-risk?name={name}"));
    }
    let end = state.dataset.observation_end.0;
    for (i, addr) in state.dataset.transactions.keys().take(40).enumerate() {
        let hex = addr.to_hex();
        match i % 3 {
            0 => targets.push(format!("/address-forensics?address={hex}")),
            1 => targets.push(format!(
                "/address-forensics?address={hex}&from=0&to={}",
                end / 2
            )),
            _ => targets.push(format!("/address-forensics?address={hex}&from={}", end / 2)),
        }
        targets.push(format!("/loss-findings?victim={hex}"));
    }
    for r in state.index.reregistrations().iter().take(20) {
        targets.push(format!("/loss-findings?victim={}", r.prev_wallet.to_hex()));
    }
    for section in ens_dropcatch::REPORT_SECTIONS {
        targets.push(format!("/report-slice?section={section}"));
    }
    // Error paths are replies too — the gate covers their bytes as well.
    targets.push("/name-risk?name=definitely-not-crawled".to_string());
    targets.push("/name-risk?name=bad!name".to_string());
    targets.push("/address-forensics?address=0x1234".to_string());
    targets.push("/address-forensics?address=0xdeadbeef&from=9&to=5".to_string());
    targets.push("/report-slice?section=appendix-z".to_string());
    targets.push("/healthz".to_string());
    targets
}

/// Minimal HTTP client: one GET, returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .expect("header/body split");
    (status, body)
}

/// The in-process reference: what any transport must reproduce.
fn reference_replies(handle: &ServeHandle, targets: &[String]) -> Vec<(u16, String)> {
    targets
        .iter()
        .map(|t| {
            if t == "/healthz" {
                return (200, "{\"ok\": true}".to_string());
            }
            match Request::from_target(t).and_then(|req| handle.query(&req)) {
                Ok(body) => (200, body),
                Err(e) => {
                    let status = if e.is_not_found() { 404 } else { 400 };
                    (status, ServeHandle::error_body(&e))
                }
            }
        })
        .collect()
}

#[test]
fn replies_are_byte_identical_across_worker_counts() {
    let state = shared_state();
    let handle = ServeHandle::new(Arc::clone(&state));
    let targets = request_targets(&state);
    assert!(targets.len() > 100, "mix covers every endpoint");
    let reference = reference_replies(&handle, &targets);

    for workers in [1, 2, 8] {
        let server = Server::start(handle.clone(), "127.0.0.1:0", workers).expect("bind");
        let addr = server.local_addr();
        // Hit the server from several client threads at once so the
        // worker pool actually interleaves under the multi-worker runs.
        let replies: Vec<(usize, u16, String)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk_start, chunk) in targets.chunks(27).enumerate().map(|(i, c)| (i * 27, c)) {
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, t)| {
                            let (status, body) = http_get(addr, t);
                            (chunk_start + j, status, body)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            let mut all: Vec<(usize, u16, String)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_by_key(|(i, _, _)| *i);
            all
        });
        for (i, status, body) in replies {
            assert_eq!(
                (status, body.as_str()),
                (reference[i].0, reference[i].1.as_str()),
                "reply for {} diverges at {workers} workers",
                targets[i]
            );
        }
        server.shutdown();
    }
}

#[test]
fn graceful_shutdown_completes_in_flight_requests_then_closes() {
    let state = shared_state();
    let handle = ServeHandle::new(Arc::clone(&state));
    let server = Server::start(handle.clone(), "127.0.0.1:0", 2).expect("bind");
    let addr = server.local_addr();

    // Park a request mid-flight: the worker has accepted the connection
    // and is blocked reading the (still unterminated) head.
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET /report-slice?section=crawl HTTP/1.1\r\nHost: t\r\n"
    )
    .expect("send head");
    std::thread::sleep(std::time::Duration::from_millis(100));

    // Shutdown from another thread — it must wait for the in-flight
    // request rather than killing it.
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(
        !shutdown.is_finished(),
        "shutdown waits for the in-flight request"
    );

    // Finish the request: the reply must come back complete and correct.
    write!(stream, "\r\n").expect("finish head");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read reply");
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 200);
    assert_eq!(
        body,
        handle
            .query(&Request::ReportSlice {
                section: "crawl".into()
            })
            .expect("crawl slice")
    );

    shutdown.join().expect("shutdown completes");
    // The listener is gone: new connections are refused (or reset
    // before a reply on platforms that complete the TCP handshake).
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut out = String::new();
            matches!(s.read_to_string(&mut out), Ok(0)) || out.is_empty()
        }
    };
    assert!(refused, "listener closed after shutdown");
}

#[test]
fn empty_dataset_serves_typed_errors_not_panics() {
    // A dataset collected from empty sources: no domains, no
    // transactions, no catches. Every query must still answer.
    let subgraph = ens_subgraph::Subgraph::index(&[], SubgraphConfig::lossless());
    let chain = sim_chain::Chain::new(ens_types::Timestamp(0));
    let etherscan = etherscan_sim::Etherscan::index(&chain, etherscan_sim::LabelService::new());
    let opensea = opensea_sim::OpenSea::new();
    let ds = Dataset::collect(
        &subgraph,
        &etherscan,
        &opensea,
        ens_types::Timestamp(1_000_000),
    );
    let handle = ServeHandle::new(Arc::new(ServeState::build(ds, 1)));

    assert!(matches!(
        handle.query(&Request::NameRisk {
            name: "gold.eth".into()
        }),
        Err(QueryError::UnknownName(_))
    ));
    let zero_addr = ens_types::Address::derive(b"nobody");
    let forensics = handle
        .query(&Request::AddressForensics {
            address: zero_addr.to_hex(),
            from: None,
            to: None,
        })
        .expect("no-history forensics succeeds");
    assert!(forensics.contains("\"transfers\": 0"));
    let losses = handle
        .query(&Request::LossFindings {
            victim: zero_addr.to_hex(),
        })
        .expect("no-loss victim succeeds");
    assert!(losses.contains("\"findings\": []"));
    for section in ens_dropcatch::REPORT_SECTIONS {
        handle
            .query(&Request::ReportSlice {
                section: section.to_string(),
            })
            .unwrap_or_else(|e| panic!("empty-dataset {section} slice fails: {e}"));
    }
}

mod fuzz {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary query parameters never panic a worker: every
        /// outcome is a reply body or a typed [`QueryError`].
        #[test]
        fn adversarial_queries_return_typed_results(
            name in junk(40),
            address in junk(48),
            victim in proptest::string::string_regex("[0x]{0,2}[0-9a-fA-F]{0,44}").unwrap(),
            section in proptest::string::string_regex("[a-z-]{0,20}").unwrap(),
            raw_from in any::<u64>(),
            raw_to in any::<u64>(),
            use_from in any::<bool>(),
            use_to in any::<bool>(),
        ) {
            let from = use_from.then_some(raw_from);
            let to = use_to.then_some(raw_to);
            let handle = ServeHandle::new(shared_state());
            let requests = [
                Request::NameRisk { name },
                Request::AddressForensics { address, from, to },
                Request::LossFindings { victim },
                Request::ReportSlice { section },
            ];
            for req in requests {
                // The assertion is completion itself (no panic, no
                // hang); errors must be typed.
                if let Err(e) = handle.query(&req) {
                    prop_assert!(!e.kind().is_empty());
                }
            }
        }

        /// Arbitrary request targets (the raw HTTP surface) parse or
        /// fail as typed bad requests — never a panic.
        #[test]
        fn adversarial_targets_never_panic(target in junk(80)) {
            let _ = Request::from_target(&target);
        }
    }

    /// Adversarial strings: ASCII junk (separators, escapes, percent
    /// signs) mixed with a few non-ASCII code points.
    fn junk(max: usize) -> impl Strategy<Value = String> {
        let pattern = format!("[a-zA-Z0-9 .?&=%+/\\\\\\-_#@!~\\{{\\}}\"'éλ✓\u{7f}]{{0,{max}}}");
        proptest::string::string_regex(&pattern).expect("junk pattern parses")
    }
}
