//! The four reply builders. Each is a pure function of the immutable
//! [`ServeState`] and the (validated) request parameters; bodies are
//! hand-rolled JSON via [`json`] so their bytes are deterministic.

use std::fmt::Write;

use ens_dropcatch::{
    current_owner, domain_status, parse_address, parse_window, FeatureRow, QueryError,
    ReRegistration,
};
use ens_types::Timestamp;

use crate::json::{f2, opt_f2, opt_str, str_lit, usd};
use crate::ServeState;

/// `name-risk`: lifecycle status + dropcatch history of one name, as of
/// the dataset's observation end.
pub fn name_risk(state: &ServeState, name: &str) -> Result<String, QueryError> {
    let pos = state.names.resolve(name)?;
    let record = &state.dataset.domains[pos];
    let at = state.dataset.observation_end;
    let status = domain_status(record, at);
    let catches: Vec<&ReRegistration> = state.index.reregistrations_of(record.label_hash).collect();
    let expiry = record.current_expiry();
    let grace_end = expiry.map(|e| e + ens_dropcatch::registrations::GRACE_PERIOD);
    let premium_end = grace_end.map(|g| g + ens_dropcatch::registrations::PREMIUM_PERIOD);

    let mut out = String::with_capacity(512);
    out.push('{');
    let _ = write!(
        out,
        "\"name\": {}, \"label_hash\": {}, \"as_of\": {}, \"as_of_date\": {}, \"status\": {}",
        opt_str(record.name.as_ref().map(|n| n.to_full()).as_deref()),
        str_lit(&record.label_hash.to_hex()),
        at.0,
        str_lit(&at.to_string()),
        str_lit(status.as_str()),
    );
    let _ = write!(
        out,
        ", \"registrations\": {}, \"renewals\": {}, \"current_owner\": {}",
        record.registrations.len(),
        record.renewals.len(),
        opt_str(current_owner(record).map(|a| a.to_hex()).as_deref()),
    );
    let _ = write!(
        out,
        ", \"current_expiry\": {}, \"grace_end\": {}, \"premium_end\": {}",
        opt_ts(expiry),
        opt_ts(grace_end),
        opt_ts(premium_end),
    );
    let _ = write!(
        out,
        ", \"was_dropcaught\": {}, \"catches\": [",
        !catches.is_empty()
    );
    for (i, r) in catches.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"at\": {}, \"delay_days\": {}, \"prev_owner\": {}, \"prev_wallet\": {}, \
             \"new_owner\": {}, \"paid_premium\": {}, \"base_cost_eth\": {}, \
             \"premium_eth\": {}, \"new_expiry\": {}}}",
            r.at.0,
            r.delay.as_days(),
            str_lit(&r.prev_owner.to_hex()),
            str_lit(&r.prev_wallet.to_hex()),
            str_lit(&r.new_owner.to_hex()),
            r.paid_premium(),
            f2(r.base_cost.as_eth_f64()),
            f2(r.premium.as_eth_f64()),
            r.new_expiry.0,
        );
    }
    out.push_str("]}");
    Ok(out)
}

/// `address-forensics`: incoming/outgoing transfer counts and exact USD
/// totals over an optional `[from, to)` window — two prefix-sum lookups.
pub fn address_forensics(
    state: &ServeState,
    address: &str,
    from: Option<u64>,
    to: Option<u64>,
) -> Result<String, QueryError> {
    let addr = parse_address(address)?;
    let window = parse_window(from, to)?;
    let (in_usd, in_count) = state.index.income_and_count(addr, window);
    let in_senders = state.index.unique_senders(addr, window);
    let (out_usd, out_count) = state.outgoing.spend_and_count(addr, window);
    let out_recipients = state.outgoing.unique_recipients(addr, window);
    let catches = state.index.catches_by(addr).count();
    let losses = state.index.losses_of(addr).count();

    let window_json = match window {
        Some((a, b)) => format!("{{\"from\": {}, \"to\": {}}}", a.0, b.0),
        None => "null".to_string(),
    };
    Ok(format!(
        "{{\"address\": {}, \"window\": {window_json}, \
         \"incoming\": {{\"transfers\": {in_count}, \"usd\": {}, \"unique_senders\": {in_senders}}}, \
         \"outgoing\": {{\"transfers\": {out_count}, \"usd\": {}, \"unique_recipients\": {out_recipients}}}, \
         \"domains_caught\": {catches}, \"domains_lost\": {losses}}}",
        str_lit(&addr.to_hex()),
        str_lit(&usd(in_usd)),
        str_lit(&usd(out_usd)),
    ))
}

/// `loss-findings`: the §4.4 findings where `victim` is the lapsed
/// wallet. An address with no findings gets an empty (successful) reply
/// — "you lost nothing" is an answer, not an error.
pub fn loss_findings(state: &ServeState, victim: &str) -> Result<String, QueryError> {
    let addr = parse_address(victim)?;
    let findings = state.losses_of_victim(addr);
    let mut total = 0.0f64;
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"victim\": {}, \"findings\": [",
        str_lit(&addr.to_hex())
    );
    for (i, &fi) in findings.iter().enumerate() {
        let f = &state.report.losses.findings[fi];
        if i > 0 {
            out.push_str(", ");
        }
        let misdirected = f.misdirected_usd();
        total += misdirected;
        let _ = write!(
            out,
            "{{\"name\": {}, \"label_hash\": {}, \"new_owner\": {}, \"caught_at\": {}, \
             \"reregistration_cost_usd\": {}, \"misdirected_usd\": {}, \"common_senders\": {}}}",
            opt_str(f.name.as_deref()),
            str_lit(&f.label_hash.to_hex()),
            str_lit(&f.new_owner.to_hex()),
            f.caught_at.0,
            f2(f.reregistration_cost_usd),
            f2(misdirected),
            f.senders.len(),
        );
    }
    let _ = write!(
        out,
        "], \"domains\": {}, \"total_misdirected_usd\": {}}}",
        findings.len(),
        f2(total)
    );
    Ok(out)
}

/// `report-slice`: one study section as structured JSON built from the
/// section's struct fields (the rendered text report is monolithic; the
/// daemon serves data, not prose).
pub fn report_slice(state: &ServeState, section: &str) -> Result<String, QueryError> {
    let r = &state.report;
    match section {
        "crawl" => {
            let c = &r.crawl;
            Ok(format!(
                "{{\"section\": \"crawl\", \"domains\": {}, \"unrecoverable_names\": {}, \
                 \"subdomains\": {}, \"addresses_crawled\": {}, \"transactions\": {}, \
                 \"gaps\": {}, \"lost_items_estimate\": {}, \"degraded\": {}, \
                 \"recovery_rate\": {}}}",
                c.domains,
                c.unrecoverable_names,
                c.subdomains,
                c.addresses_crawled,
                c.transactions,
                c.gaps.len(),
                c.lost_items_estimate,
                c.degraded,
                f2(c.recovery_rate()),
            ))
        }
        "overview" => {
            let o = &r.overview;
            let mut months = String::new();
            for (i, m) in o.timeline.months.iter().enumerate() {
                if i > 0 {
                    months.push_str(", ");
                }
                let _ = write!(
                    months,
                    "{{\"month\": {}, \"registrations\": {}, \"expirations\": {}, \
                     \"reregistrations\": {}}}",
                    str_lit(&m.month),
                    m.registrations,
                    m.expirations,
                    m.reregistrations
                );
            }
            let delays = ens_dropcatch::stats::Ecdf::new(o.delays.delays_days.clone());
            let mut frequency = String::new();
            for (i, (count, domains)) in o.domain_frequency.frequency.iter().enumerate() {
                if i > 0 {
                    frequency.push_str(", ");
                }
                let _ = write!(frequency, "{}: {}", str_lit(&count.to_string()), domains);
            }
            let multi_catchers = o
                .catchers
                .counts_desc
                .iter()
                .filter(|(_, c)| *c > 1)
                .count();
            let mut top = String::new();
            for (i, (addr, count)) in o.catchers.counts_desc.iter().take(10).enumerate() {
                if i > 0 {
                    top.push_str(", ");
                }
                let _ = write!(
                    top,
                    "{{\"address\": {}, \"catches\": {}}}",
                    str_lit(&addr.to_hex()),
                    count
                );
            }
            Ok(format!(
                "{{\"section\": \"overview\", \"reregistrations\": {}, \"months\": [{months}], \
                 \"delays\": {{\"count\": {}, \"at_premium\": {}, \"on_premium_end_day\": {}, \
                 \"shortly_after_premium\": {}, \"median_days\": {}, \"p90_days\": {}}}, \
                 \"domain_frequency\": {{{frequency}}}, \
                 \"catchers\": {{\"addresses\": {}, \"multi_catchers\": {multi_catchers}, \
                 \"top\": [{top}]}}}}",
                o.reregistrations.len(),
                delays.len(),
                o.delays.at_premium,
                o.delays.on_premium_end_day,
                o.delays.shortly_after_premium,
                opt_f2(delays.quantile(0.5)),
                opt_f2(delays.quantile(0.9)),
                o.catchers.counts_desc.len(),
            ))
        }
        "features" => {
            let f = &r.features;
            let mut rows = String::new();
            for (i, row) in f.rows.iter().enumerate() {
                if i > 0 {
                    rows.push_str(", ");
                }
                match row {
                    FeatureRow::Numeric {
                        name,
                        mean_rereg,
                        mean_control,
                        test,
                    } => {
                        let _ = write!(
                            rows,
                            "{{\"name\": {}, \"type\": \"numeric\", \"mean_rereg\": {}, \
                             \"mean_control\": {}, \"p_value\": {}, \"significant\": {}}}",
                            str_lit(name),
                            f2(*mean_rereg),
                            f2(*mean_control),
                            opt_f2(test.as_ref().map(|t| t.p_value)),
                            test.as_ref().is_some_and(|t| t.significant()),
                        );
                    }
                    FeatureRow::Categorical {
                        name,
                        count_rereg,
                        frac_rereg,
                        count_control,
                        frac_control,
                        test,
                    } => {
                        let _ = write!(
                            rows,
                            "{{\"name\": {}, \"type\": \"categorical\", \"count_rereg\": {}, \
                             \"frac_rereg\": {}, \"count_control\": {}, \"frac_control\": {}, \
                             \"p_value\": {}, \"significant\": {}}}",
                            str_lit(name),
                            count_rereg,
                            f2(*frac_rereg),
                            count_control,
                            f2(*frac_control),
                            opt_f2(test.as_ref().map(|t| t.p_value)),
                            test.as_ref().is_some_and(|t| t.significant()),
                        );
                    }
                }
            }
            Ok(format!(
                "{{\"section\": \"features\", \"n_rereg\": {}, \"n_control\": {}, \
                 \"rows\": [{rows}], \
                 \"income_rereg\": {}, \"income_control\": {}}}",
                f.n_rereg,
                f.n_control,
                ecdf_summary(&f.income_rereg),
                ecdf_summary(&f.income_control),
            ))
        }
        "losses" => {
            let l = &r.losses;
            Ok(format!(
                "{{\"section\": \"losses\", \"findings\": {}, \
                 \"domains_noncustodial\": {}, \"domains_with_coinbase\": {}, \
                 \"txs_noncustodial\": {}, \"txs_incl_coinbase\": {}, \
                 \"unique_senders_noncustodial\": {}, \"unique_senders_incl_coinbase\": {}, \
                 \"avg_usd_noncustodial\": {}, \"avg_usd_incl_coinbase\": {}, \
                 \"hijackable\": {{\"domains_considered\": {}, \"domains_with_funds\": {}}}}}",
                l.findings.len(),
                l.domains_noncustodial,
                l.domains_with_coinbase,
                l.txs_noncustodial,
                l.txs_incl_coinbase,
                l.unique_senders_noncustodial,
                l.unique_senders_incl_coinbase,
                f2(l.avg_usd_noncustodial),
                f2(l.avg_usd_incl_coinbase),
                l.hijackable.domains_considered,
                l.hijackable.usd_per_domain.len(),
            ))
        }
        "resale" => {
            let s = &r.resale;
            let prices = ens_dropcatch::stats::Ecdf::new(s.sale_prices_usd.clone());
            Ok(format!(
                "{{\"section\": \"resale\", \"reregistered_domains\": {}, \"listed\": {}, \
                 \"sold\": {}, \"listed_fraction\": {}, \"sold_fraction\": {}, \
                 \"sale_prices_usd\": {}}}",
                s.reregistered_domains,
                s.listed,
                s.sold,
                f2(s.listed_fraction()),
                f2(s.sold_fraction()),
                ecdf_summary(&prices),
            ))
        }
        "countermeasures" => {
            let c = &r.countermeasures;
            let mut table2 = String::new();
            for (i, row) in c.table2.iter().enumerate() {
                if i > 0 {
                    table2.push_str(", ");
                }
                let _ = write!(
                    table2,
                    "{{\"wallet\": {}, \"version\": {}, \"displays_warning\": {}}}",
                    str_lit(&row.wallet),
                    str_lit(&row.version),
                    row.displays_warning
                );
            }
            let policy = |p: &ens_dropcatch::countermeasures::PolicyOutcome| {
                format!(
                    "{{\"misdirected_txs\": {}, \"flagged_txs\": {}, \"misdirected_usd\": {}, \
                     \"flagged_usd\": {}, \"legit_txs\": {}, \"false_positive_txs\": {}}}",
                    p.misdirected_txs,
                    p.flagged_txs,
                    f2(p.misdirected_usd),
                    f2(p.flagged_usd),
                    p.legit_txs,
                    p.false_positive_txs
                )
            };
            Ok(format!(
                "{{\"section\": \"countermeasures\", \"warning_window_days\": {}, \
                 \"interception_rate\": {}, \"table2\": [{table2}], \
                 \"risk_policy\": {}, \"rereg_policy\": {}, \"reverse_policy\": {}, \
                 \"combined_policy\": {}}}",
                c.warning_window_days,
                f2(c.interception_rate()),
                policy(&c.risk_policy),
                policy(&c.rereg_policy),
                policy(&c.reverse_policy),
                policy(&c.combined_policy),
            ))
        }
        other => Err(QueryError::UnknownSection(other.to_string())),
    }
}

/// `Some(expiry)` as its unix-seconds number, `None` as `null`.
fn opt_ts(t: Option<Timestamp>) -> String {
    match t {
        Some(t) => t.0.to_string(),
        None => "null".to_string(),
    }
}

/// A compact distribution summary: sample size plus type-7 quantiles.
/// Quantiles of an empty sample are `null`, never a panic — the
/// adversarial-input audit's poster child.
fn ecdf_summary(e: &ens_dropcatch::stats::Ecdf) -> String {
    format!(
        "{{\"n\": {}, \"p25\": {}, \"p50\": {}, \"p75\": {}, \"p90\": {}}}",
        e.len(),
        opt_f2(e.quantile(0.25)),
        opt_f2(e.quantile(0.5)),
        opt_f2(e.quantile(0.75)),
        opt_f2(e.quantile(0.9)),
    )
}
