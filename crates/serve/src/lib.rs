//! # ens-serve
//!
//! The resident query daemon over a crawled [`Dataset`]: load once, build
//! the [`AnalysisIndex`] (and its outgoing-side twin) once, run the study
//! once, then serve unlimited concurrent read-only queries from an
//! immutable [`Arc`]ed snapshot. Four query types cover the paper's
//! consumer-facing questions:
//!
//! - **name-risk** — is/was this name dropcaught, who holds it now, where
//!   is it in the expiry → grace → premium lifecycle;
//! - **address-forensics** — incoming/outgoing transfer counts and USD
//!   totals for any address over any window, O(log n) via prefix sums;
//! - **loss-findings** — the §4.4 misdirected-fund findings for one
//!   victim wallet;
//! - **report-slice** — any [`StudyReport`] section as structured JSON.
//!
//! Two transports share one code path: the in-process [`ServeHandle`]
//! (what tests and benches drive, no sockets) and the dependency-free
//! HTTP/1.1 loop in [`http`]. Every reply is deterministic hand-rolled
//! JSON — byte-identical at any worker count, which the serve bench
//! gates on — and every failure is a typed
//! [`QueryError`], never a panic: an adversarial name, an unknown
//! address, an inverted window or an empty dataset all produce error
//! replies.
//!
//! [`Dataset`]: ens_dropcatch::Dataset
//! [`AnalysisIndex`]: ens_dropcatch::AnalysisIndex
//! [`StudyReport`]: ens_dropcatch::StudyReport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
mod json;
mod replies;

use std::collections::BTreeMap;
use std::sync::Arc;

use ens_dropcatch::{
    AnalysisIndex, CrawlConfig, DataSources, Dataset, NameDirectory, OutgoingIndex, QueryError,
    StudyConfig, StudyReport,
};
use ens_types::Address;
use etherscan_sim::LabelService;

/// Everything a query needs, built once at startup and shared immutably
/// (behind an [`Arc`]) by every worker thread for the daemon's lifetime.
pub struct ServeState {
    /// The loaded dataset (self-contained: labels, reverse claims and
    /// marketplace events travel inside it).
    pub dataset: Dataset,
    /// Incoming-side index: per-address timestamp-sorted transfers with
    /// USD prefix sums, plus the re-registration list and its lookups.
    pub index: AnalysisIndex,
    /// Outgoing-side index (serve-only; the offline study never needs
    /// it): per-address *sent* transfers with the same prefix-sum trick.
    pub outgoing: OutgoingIndex,
    /// Full-name → domain-position directory for `name-risk` lookups.
    pub names: NameDirectory,
    /// The complete study, run once at startup; `report-slice` serves
    /// its sections.
    pub report: StudyReport,
    /// Positions into `report.losses.findings`, keyed by victim wallet.
    loss_by_victim: BTreeMap<Address, Vec<usize>>,
}

impl ServeState {
    /// Builds the resident state: indexes the dataset (sharded over
    /// `threads`), runs the full study once, and precomputes the name
    /// and victim directories. This is the expensive call — everything
    /// after it is read-only.
    pub fn build(dataset: Dataset, threads: usize) -> ServeState {
        let oracle = price_oracle::PriceOracle::new();
        let index = AnalysisIndex::build_with_threads(&dataset, &oracle, threads);
        let outgoing = OutgoingIndex::build_with_threads(&dataset, &oracle, threads);
        let names = NameDirectory::build(&dataset.domains);
        // Offline analysis is self-contained (the CLI's `analyze` path):
        // placeholder sources are never consulted by the study.
        let opensea = opensea_sim::OpenSea::new();
        let subgraph = ens_subgraph::Subgraph::index(&[], ens_subgraph::SubgraphConfig::lossless());
        let chain = sim_chain::Chain::new(ens_types::Timestamp(0));
        let etherscan = etherscan_sim::Etherscan::index(&chain, LabelService::new());
        let sources = DataSources {
            subgraph: &subgraph,
            etherscan: &etherscan,
            opensea: &opensea,
            oracle: &oracle,
            observation_end: dataset.observation_end,
            crawl: CrawlConfig::with_threads(threads),
        };
        let config = StudyConfig {
            threads,
            ..StudyConfig::default()
        };
        let report = ens_dropcatch::run_study_with_index(&dataset, &sources, &config, &index);
        let mut loss_by_victim: BTreeMap<Address, Vec<usize>> = BTreeMap::new();
        for (i, f) in report.losses.findings.iter().enumerate() {
            loss_by_victim.entry(f.prev_wallet).or_default().push(i);
        }
        ServeState {
            dataset,
            index,
            outgoing,
            names,
            report,
            loss_by_victim,
        }
    }

    /// Positions into `report.losses.findings` for one victim wallet
    /// (empty for an address that lost nothing — not an error).
    pub fn losses_of_victim(&self, victim: Address) -> &[usize] {
        self.loss_by_victim
            .get(&victim)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// A parsed query — the transport-independent request form. The HTTP
/// layer maps URLs onto this; tests and benches construct it directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `name-risk`: lifecycle + dropcatch history of one name.
    NameRisk {
        /// The name to look up (bare label or `label.eth`).
        name: String,
    },
    /// `address-forensics`: transfer counts and USD totals for one
    /// address, optionally windowed to `[from, to)` (unix seconds).
    AddressForensics {
        /// 20-byte hex address.
        address: String,
        /// Window start (inclusive), unix seconds.
        from: Option<u64>,
        /// Window end (exclusive), unix seconds.
        to: Option<u64>,
    },
    /// `loss-findings`: the misdirected-fund findings for one victim.
    LossFindings {
        /// 20-byte hex address of the lapsed wallet.
        victim: String,
    },
    /// `report-slice`: one [`StudyReport`] section as structured JSON.
    ///
    /// [`StudyReport`]: ens_dropcatch::StudyReport
    ReportSlice {
        /// One of [`ens_dropcatch::REPORT_SECTIONS`].
        section: String,
    },
}

impl Request {
    /// Parses an HTTP request target (`/name-risk?name=gold.eth`) into a
    /// [`Request`]. Unknown endpoints, missing parameters and malformed
    /// integers are all [`QueryError::BadRequest`] — typed, not panics.
    pub fn from_target(target: &str) -> Result<Request, QueryError> {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        let params = parse_query(query)?;
        let require = |key: &str| -> Result<String, QueryError> {
            params
                .get(key)
                .cloned()
                .ok_or_else(|| QueryError::BadRequest(format!("missing parameter {key:?}")))
        };
        let optional_u64 = |key: &str| -> Result<Option<u64>, QueryError> {
            params
                .get(key)
                .map(|v| {
                    v.parse::<u64>().map_err(|_| {
                        QueryError::BadRequest(format!(
                            "parameter {key:?} is not an integer: {v:?}"
                        ))
                    })
                })
                .transpose()
        };
        match path {
            "/name-risk" => Ok(Request::NameRisk {
                name: require("name")?,
            }),
            "/address-forensics" => Ok(Request::AddressForensics {
                address: require("address")?,
                from: optional_u64("from")?,
                to: optional_u64("to")?,
            }),
            "/loss-findings" => Ok(Request::LossFindings {
                victim: require("victim")?,
            }),
            "/report-slice" => Ok(Request::ReportSlice {
                section: require("section")?,
            }),
            other => Err(QueryError::BadRequest(format!(
                "unknown endpoint {other:?}"
            ))),
        }
    }
}

/// Splits `k=v&k2=v2` with percent-decoding; later keys win duplicates.
fn parse_query(query: &str) -> Result<BTreeMap<String, String>, QueryError> {
    let mut out = BTreeMap::new();
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.insert(percent_decode(k)?, percent_decode(v)?);
    }
    Ok(out)
}

/// Minimal percent-decoding (`%41` → `A`, `+` → space); invalid escapes
/// are a typed bad request, and non-UTF-8 decodes are rejected.
fn percent_decode(s: &str) -> Result<String, QueryError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| {
                        QueryError::BadRequest(format!("invalid percent-escape in {s:?}"))
                    })?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out)
        .map_err(|_| QueryError::BadRequest(format!("query parameter is not UTF-8: {s:?}")))
}

/// The in-process query interface: a cheap clone around the shared
/// state. One [`ServeHandle`] per worker thread; every query is a pure
/// read returning either a deterministic JSON body or a typed error.
#[derive(Clone)]
pub struct ServeHandle {
    state: Arc<ServeState>,
}

impl ServeHandle {
    /// Wraps already-built state.
    pub fn new(state: Arc<ServeState>) -> ServeHandle {
        ServeHandle { state }
    }

    /// The shared state (for tests that want to inspect it).
    pub fn state(&self) -> &ServeState {
        &self.state
    }

    /// Answers one query. The reply body is a deterministic function of
    /// the request and the loaded dataset — byte-identical no matter
    /// which worker thread runs it, which the serve bench gates on.
    pub fn query(&self, request: &Request) -> Result<String, QueryError> {
        match request {
            Request::NameRisk { name } => replies::name_risk(&self.state, name),
            Request::AddressForensics { address, from, to } => {
                replies::address_forensics(&self.state, address, *from, *to)
            }
            Request::LossFindings { victim } => replies::loss_findings(&self.state, victim),
            Request::ReportSlice { section } => replies::report_slice(&self.state, section),
        }
    }

    /// The error reply body for a failed query — also deterministic, so
    /// the equivalence gate covers error paths too.
    pub fn error_body(error: &QueryError) -> String {
        format!(
            "{{\"error\": {}, \"detail\": {}}}",
            json::str_lit(error.kind()),
            json::str_lit(&error.to_string())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_parse_into_typed_requests() {
        assert_eq!(
            Request::from_target("/name-risk?name=gold.eth"),
            Ok(Request::NameRisk {
                name: "gold.eth".into()
            })
        );
        assert_eq!(
            Request::from_target("/address-forensics?address=0xab&from=5&to=9"),
            Ok(Request::AddressForensics {
                address: "0xab".into(),
                from: Some(5),
                to: Some(9),
            })
        );
        assert_eq!(
            Request::from_target("/loss-findings?victim=0xab"),
            Ok(Request::LossFindings {
                victim: "0xab".into()
            })
        );
        assert_eq!(
            Request::from_target("/report-slice?section=losses"),
            Ok(Request::ReportSlice {
                section: "losses".into()
            })
        );
    }

    #[test]
    fn malformed_targets_are_typed_bad_requests() {
        for target in [
            "/nope",
            "/name-risk",
            "/name-risk?title=x",
            "/address-forensics?address=0xab&from=notanumber",
            "/name-risk?name=%zz",
        ] {
            assert!(
                matches!(Request::from_target(target), Err(QueryError::BadRequest(_))),
                "{target} should be a bad request"
            );
        }
    }

    #[test]
    fn percent_escapes_decode() {
        assert_eq!(
            Request::from_target("/name-risk?name=gold%2Deth+x"),
            Ok(Request::NameRisk {
                name: "gold-eth x".into()
            })
        );
    }
}
