//! Deterministic hand-rolled JSON fragments for reply bodies.
//!
//! Replies are compared byte-for-byte across worker counts, so every
//! number and string must serialize identically on every code path:
//! strings escape exactly the mandatory set, USD amounts format from
//! integer cents (never through `f64`), and free `f64` statistics pin to
//! two decimals.

use std::fmt::Write;

use ens_types::UsdCents;

/// Serializes a string as a quoted JSON string, escaping the mandatory
/// set (quote, backslash, control characters).
pub fn str_lit(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `Some(s)` as a string literal, `None` as `null`.
pub fn opt_str(s: Option<&str>) -> String {
    match s {
        Some(s) => str_lit(s),
        None => "null".to_string(),
    }
}

/// Exact dollars from integer cents: `"1234.05"`. Never routes through
/// floating point, so the bytes are a pure function of the cents.
pub fn usd(amount: UsdCents) -> String {
    format!("{}.{:02}", amount.0 / 100, amount.0 % 100)
}

/// A free `f64` statistic pinned to two decimals; non-finite values
/// (empty-sample means) serialize as `null` rather than invalid JSON.
pub fn f2(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".to_string()
    }
}

/// `Some(v)` via [`f2`], `None` as `null`.
pub fn opt_f2(v: Option<f64>) -> String {
    match v {
        Some(v) => f2(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_the_mandatory_set() {
        assert_eq!(str_lit("plain"), "\"plain\"");
        assert_eq!(str_lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(str_lit("x\n\u{1}"), "\"x\\n\\u0001\"");
    }

    #[test]
    fn usd_is_exact_integer_arithmetic() {
        assert_eq!(usd(UsdCents(0)), "0.00");
        assert_eq!(usd(UsdCents(5)), "0.05");
        assert_eq!(usd(UsdCents(123_456)), "1234.56");
    }

    #[test]
    fn floats_pin_to_two_decimals_and_null_out_nonfinite() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(f64::NAN), "null");
        assert_eq!(opt_f2(None), "null");
        assert_eq!(opt_f2(Some(2.5)), "2.50");
    }
}
