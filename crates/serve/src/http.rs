//! The dependency-free HTTP/1.1 transport: one acceptor thread feeding a
//! bounded pool of worker threads over a channel, each worker answering
//! one connection at a time through the same [`ServeHandle`] code path
//! the in-process API uses. Deliberately minimal — `GET` only,
//! `Connection: close`, no keep-alive, no TLS — because the transport is
//! not the contribution; the resident indexed state is.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ens_dropcatch::QueryError;

use crate::{Request, ServeHandle};

/// Maximum bytes of request head (request line + headers) we will read
/// before calling the request oversized. Adversarial clients get a 400,
/// not unbounded memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// How many accepted-but-unserved connections may queue before the
/// acceptor blocks (backpressure instead of unbounded growth).
const ACCEPT_QUEUE: usize = 1024;

/// A running HTTP server: the acceptor thread, its worker pool, and the
/// shutdown flag they all watch.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` and starts `workers` worker threads (at least 1).
    /// Returns as soon as the listener is accepting; queries are served
    /// until [`Server::shutdown`].
    pub fn start(handle: ServeHandle, addr: &str, workers: usize) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) = sync_channel(ACCEPT_QUEUE);
        let rx = Arc::new(Mutex::new(rx));

        let workers = workers.max(1);
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let handle = handle.clone();
            pool.push(std::thread::spawn(move || loop {
                // Holding the lock only for the recv keeps the pool busy:
                // the next worker can pick up a connection while this one
                // is still writing its response.
                let stream = match rx.lock().expect("receiver lock").recv() {
                    Ok(s) => s,
                    Err(_) => return, // acceptor dropped the sender: drain done
                };
                serve_connection(stream, &handle);
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        // The wake-up connection (and any later ones) are
                        // dropped unanswered; queued connections still drain.
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping `tx` here closes the channel: workers finish
                // whatever is queued, then exit.
            })
        };

        Ok(Server {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: pool,
        })
    }

    /// The bound address (useful with `:0` for an OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, let every accepted connection
    /// finish, then join all threads. In-flight requests complete; the
    /// listener closes.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // `incoming()` blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Reads one request, answers it, closes the connection.
fn serve_connection(stream: TcpStream, handle: &ServeHandle) {
    // A stalled or byte-dribbling client must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let request_line = match read_head(&mut reader) {
        Ok(line) => line,
        Err(detail) => {
            let err = QueryError::BadRequest(detail);
            let mut stream = reader.into_inner();
            let _ = write_response(&mut stream, 400, &ServeHandle::error_body(&err));
            return;
        }
    };
    let mut stream = reader.into_inner();
    let (status, body) = respond(handle, &request_line);
    let _ = write_response(&mut stream, status, &body);
}

/// Reads the request line and discards headers, with a hard size cap.
/// Returns the request line, or a description of what was malformed.
fn read_head<R: Read>(reader: &mut BufReader<R>) -> Result<String, String> {
    let mut request_line = String::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("connection closed mid-request".to_string()),
            Ok(n) => total += n,
            Err(e) => return Err(format!("read failed: {e}")),
        }
        if total > MAX_HEAD_BYTES {
            return Err("request head exceeds 16 KiB".to_string());
        }
        if request_line.is_empty() {
            request_line = line.trim_end().to_string();
            if request_line.is_empty() {
                return Err("empty request line".to_string());
            }
            continue;
        }
        if line == "\r\n" || line == "\n" {
            return Ok(request_line);
        }
    }
}

/// Maps one request line onto a status + deterministic JSON body.
fn respond(handle: &ServeHandle, request_line: &str) -> (u16, String) {
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            let err = QueryError::BadRequest(format!("malformed request line {request_line:?}"));
            return (400, ServeHandle::error_body(&err));
        }
    };
    if method != "GET" {
        let err = QueryError::BadRequest(format!("method {method} not allowed (GET only)"));
        return (405, ServeHandle::error_body(&err));
    }
    if target == "/healthz" {
        return (200, "{\"ok\": true}".to_string());
    }
    match Request::from_target(target).and_then(|req| handle.query(&req)) {
        Ok(body) => (200, body),
        Err(err) => {
            let status = if err.is_not_found() { 404 } else { 400 };
            (status, ServeHandle::error_body(&err))
        }
    }
}

/// Writes a minimal HTTP/1.1 response and flushes it.
fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
