//! Metrics-snapshot validator: checks that an observability snapshot is
//! well-formed and that its counters reconcile with the crawl's own
//! accounting.
//!
//! Two modes:
//!
//! ```sh
//! # Self-contained: run a chaotic metered collection + study in-process,
//! # then reconcile the snapshot against the CrawlReport exactly.
//! cargo run --release --example metrics_reconcile
//!
//! # Validate an existing snapshot written by the CLI's `--metrics-json`:
//! # structural checks only (sections present, histogram shapes coherent,
//! # page/item counters positive and self-consistent).
//! cargo run --release --example metrics_reconcile -- metrics.json
//! ```
//!
//! Exits non-zero on any violated identity, so CI can gate on it.

use ens_dropcatch_suite::analysis::{
    run_study_on_metered, CrawlConfig, DataSources, Dataset, FailurePolicy, Metrics, StudyConfig,
};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::types::FaultProfile;
use ens_dropcatch_suite::workload::WorldConfig;
use serde::value::Value;

fn fail(msg: &str) -> ! {
    eprintln!("RECONCILE FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    match std::env::args().nth(1) {
        Some(path) => validate_file(&path),
        None => self_contained(),
    }
}

/// Runs a chaotic metered collection + study and reconciles the snapshot
/// against the `CrawlReport` identity by identity.
fn self_contained() {
    let world = WorldConfig::small().with_names(400).with_seed(88).build();
    let sg = world.subgraph(SubgraphConfig::default());
    let scan = world.etherscan();
    let config = CrawlConfig {
        chaos: FaultProfile::named("mixed", 4242),
        failure: FailurePolicy::degrade(),
        subgraph_page_size: 32,
        txlist_page_size: 16,
        market_page_size: 8,
        ..CrawlConfig::with_threads(4)
    };
    let metrics = Metrics::new();
    let (ds, _) = Dataset::try_collect_metered(
        &sg,
        &scan,
        world.opensea(),
        world.observation_end(),
        &config,
        &metrics,
    )
    .expect("degrade policy completes under chaos");
    let sources = DataSources {
        subgraph: &sg,
        etherscan: &scan,
        opensea: world.opensea(),
        oracle: world.oracle(),
        observation_end: world.observation_end(),
        crawl: config,
    };
    run_study_on_metered(&ds, &sources, &StudyConfig::default(), &metrics);

    let snap = metrics.snapshot();
    let report = &ds.crawl_report;
    let mut checked = 0usize;
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            fail(&format!("{name}: counter {got} != report {want}"));
        }
        checked += 1;
    };
    for (name, stats) in [
        ("subgraph", &report.subgraph),
        ("txlist", &report.txlist),
        ("market", &report.market),
    ] {
        check(
            name,
            snap.counter(&format!("crawl/{name}/pages")),
            stats.pages as u64,
        );
        check(
            name,
            snap.counter(&format!("crawl/{name}/items")),
            stats.items as u64,
        );
        check(
            name,
            snap.counter(&format!("crawl/{name}/backoff_virtual_ms")),
            stats.backoff_virtual_ms,
        );
        let by_kind = [
            ("rate_limited", stats.retries_by_kind.rate_limited),
            ("timeout", stats.retries_by_kind.timeout),
            ("server_error", stats.retries_by_kind.server_error),
            ("malformed", stats.retries_by_kind.malformed),
        ];
        for (suffix, count) in by_kind {
            check(
                name,
                snap.counter(&format!("crawl/{name}/retries/{suffix}")),
                count as u64,
            );
        }
    }
    let gaps: u64 = ["subgraph", "txlist", "market"]
        .iter()
        .map(|n| snap.counter(&format!("crawl/{n}/gaps")))
        .sum();
    check("gaps", gaps, report.gaps.len() as u64);
    check(
        "collect/domains",
        snap.counter("collect/domains"),
        report.domains as u64,
    );
    check(
        "collect/transactions",
        snap.counter("collect/transactions"),
        report.transactions as u64,
    );

    // The JSON snapshot must parse back and describe the same structure
    // the typed accessors see.
    let parsed: Value =
        serde_json::from_str(&snap.deterministic_json()).expect("snapshot JSON parses");
    validate_deterministic(&parsed);

    println!("all {checked} crawl identities reconcile; snapshot JSON is well-formed");
}

/// Structural validation of a snapshot file written by `--metrics-json`.
fn validate_file(path: &str) {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let parsed: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("JSON parse: {e:?}")));
    let Value::Map(top) = &parsed else {
        fail("top level is not an object")
    };
    let deterministic = top
        .iter()
        .find(|(k, _)| k == "deterministic")
        .map(|(_, v)| v)
        .unwrap_or_else(|| fail("missing \"deterministic\" section"));
    if !top.iter().any(|(k, _)| k == "wall_clock_ms") {
        fail("missing \"wall_clock_ms\" section");
    }
    validate_deterministic(deterministic);
    println!("{path}: snapshot is well-formed and self-consistent");
}

/// Checks the deterministic section's internal structure: sections
/// present, counters all non-negative integers with at least one
/// positive, histogram shapes coherent, spans well-formed.
///
/// Deliberately *not* enforced here: per-source crawl positivity. An
/// `analyze` snapshot has no crawl counters at all (the dataset came
/// from a file), and a degraded chaos run can legitimately lose every
/// item of one source to a hole. The exact crawl identities are
/// asserted in the self-contained mode, where the `CrawlReport` is in
/// hand to reconcile against.
fn validate_deterministic(v: &Value) {
    let Value::Map(sections) = v else {
        fail("deterministic section is not an object")
    };
    let get = |name: &str| -> &Value {
        sections
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| fail(&format!("missing \"{name}\"")))
    };

    let Value::Map(counters) = get("counters") else {
        fail("counters is not an object")
    };
    if counters.is_empty() {
        fail("counters section is empty");
    }
    let mut any_positive = false;
    for (name, value) in counters.iter() {
        match value {
            Value::Uint(u) => any_positive |= *u > 0,
            Value::Int(i) if *i >= 0 => any_positive |= *i > 0,
            _ => fail(&format!("counter {name} is not a non-negative integer")),
        }
    }
    if !any_positive {
        fail("every counter is zero");
    }

    let Value::Map(histograms) = get("histograms") else {
        fail("histograms is not an object")
    };
    for (name, histo) in histograms.iter() {
        let Value::Map(fields) = histo else {
            fail(&format!("histogram {name} is not an object"))
        };
        let arr_len = |field: &str| -> usize {
            match fields.iter().find(|(k, _)| k == field) {
                Some((_, Value::Seq(a))) => a.len(),
                _ => fail(&format!("histogram {name} missing array \"{field}\"")),
            }
        };
        if arr_len("edges") != arr_len("counts") {
            fail(&format!("histogram {name}: edges/counts length mismatch"));
        }
    }

    let Value::Seq(spans) = get("spans") else {
        fail("spans is not an array")
    };
    if spans.is_empty() {
        fail("no spans recorded");
    }
    for span in spans {
        let Value::Map(fields) = span else {
            fail("span is not an object")
        };
        for field in ["path", "calls", "virtual_ms"] {
            if !fields.iter().any(|(k, _)| k == field) {
                fail(&format!("span missing \"{field}\""));
            }
        }
    }
}
