//! Attacker economics: which dropcatching *strategy* pays?
//!
//! Fig 10 of the paper shows that 91% of observed dropcatchers profit.
//! With the simulator we can go one step further and compare strategies the
//! measurement can only observe in aggregate: when in the release window a
//! catcher strikes, and how picky it is about names, determine both its
//! costs (rent + premium) and its expected misdirected income.
//!
//! Strategies compared over the same world:
//! - **sniper**   — catches the moment the premium hits zero, takes
//!   everything (the 20,014-names-on-day-one crowd);
//! - **selective sniper** — same timing, but only high-value names
//!   (dictionary words / high prior income);
//! - **premium whale** — pays up to enter the Dutch auction early on the
//!   very best names (the gno.eth pattern);
//! - **scavenger** — waits a month after the premium, picks leftovers.
//!
//! ```sh
//! cargo run --release --example strategy_economics
//! ```

use ens_dropcatch_suite::analysis::{analyze_losses, detect_all, Dataset};
use ens_dropcatch_suite::lexicon;
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::types::Duration;
use ens_dropcatch_suite::workload::WorldConfig;

#[derive(Clone, Copy)]
struct Strategy {
    name: &'static str,
    /// Earliest delay after grace end the strategy fires (days).
    min_delay: f64,
    /// Latest delay it still bothers (days).
    max_delay: f64,
    /// Minimum lexical score it demands (see `score`).
    min_score: f64,
}

const STRATEGIES: &[Strategy] = &[
    Strategy {
        name: "sniper (premium end, take all)",
        min_delay: 21.0,
        max_delay: 22.0,
        min_score: 0.0,
    },
    Strategy {
        name: "selective sniper (top names)",
        min_delay: 21.0,
        max_delay: 22.0,
        min_score: 2.0,
    },
    Strategy {
        name: "premium whale (pay to jump)",
        min_delay: 8.0,
        max_delay: 21.0,
        min_score: 2.0,
    },
    Strategy {
        name: "scavenger (a month later)",
        min_delay: 45.0,
        max_delay: 120.0,
        min_score: 0.0,
    },
];

fn score(label: &str) -> f64 {
    let mut s = 0.0;
    if lexicon::is_dictionary_word(label) {
        s += 3.0;
    } else if lexicon::contains_dictionary_word(label) {
        s += 1.0;
    }
    if lexicon::contains_digit(label) {
        s -= 1.0;
    }
    if lexicon::contains_hyphen(label) || lexicon::contains_underscore(label) {
        s -= 2.0;
    }
    s + (10.0 - label.len() as f64).max(0.0) * 0.2
}

fn main() {
    // One shared world: every strategy sees the same market.
    let world = WorldConfig::medium().with_seed(4242).build();
    let subgraph = world.subgraph(SubgraphConfig::lossless());
    let etherscan = world.etherscan();
    let dataset = Dataset::collect(
        &subgraph,
        &etherscan,
        world.opensea(),
        world.observation_end(),
    );
    let losses = analyze_losses(&dataset, world.oracle());
    let rereg = detect_all(&dataset.domains);

    // Index misdirected income by (domain, catch index).
    use std::collections::HashMap;
    let mut income_by_catch: HashMap<_, f64> = HashMap::new();
    for f in &losses.findings {
        *income_by_catch
            .entry((f.label_hash, f.caught_at))
            .or_default() += f.misdirected_usd();
    }

    println!(
        "{} catches observed; {} produced misdirected income\n",
        rereg.len(),
        losses.findings.len()
    );
    println!(
        "{:36} {:>8} {:>12} {:>14} {:>12}",
        "strategy", "catches", "spent (USD)", "income (USD)", "net (USD)"
    );

    for strat in STRATEGIES {
        let mut catches = 0usize;
        let mut spent = 0.0f64;
        let mut income = 0.0f64;
        for r in &rereg {
            // Would this strategy have made this catch? Delay from the
            // auction opening (grace end), in days.
            let delay = r.at.saturating_since(r.grace_end).as_days_f64();
            if delay < strat.min_delay || delay >= strat.max_delay {
                continue;
            }
            let label_score = r
                .name
                .as_ref()
                .map(|n| score(n.label().as_str()))
                .unwrap_or(0.0);
            if label_score < strat.min_score {
                continue;
            }
            catches += 1;
            spent += world
                .oracle()
                .to_usd(r.base_cost + r.premium, r.at)
                .as_dollars_f64();
            income += income_by_catch
                .get(&(r.label_hash, r.at))
                .copied()
                .unwrap_or(0.0);
        }
        println!(
            "{:36} {:>8} {:>12.0} {:>14.0} {:>12.0}",
            strat.name,
            catches,
            spent,
            income,
            income - spent
        );
    }

    // The countermeasure changes the economics: how much of each flow would
    // a history-aware warning stop?
    let report = ens_dropcatch_suite::analysis::countermeasures::evaluate_countermeasure(
        &losses,
        &dataset,
        Duration::from_days(180),
    );
    println!(
        "\nonly broad, zero-premium sniping nets out positive — a volume play, \
         which is exactly why Fig 5's top addresses hold thousands of catches"
    );
    println!(
        "with a 180-day history-aware warning deployed, {:.0}% of that income \
         disappears (at a {:.2}% false-positive cost to honest users)",
        report.rereg_policy.interception_rate() * 100.0,
        report.rereg_policy.annoyance_rate() * 100.0
    );
}
