//! Degraded crawl walkthrough: inject deterministic faults into every data
//! source, let the `Degrade` failure policy ride over them, and inspect the
//! crawl-health summary — gaps, loss estimates, per-kind retry pressure and
//! virtual backoff — that the study report carries.
//!
//! ```sh
//! cargo run --release --example degraded_crawl
//! ```

use ens_dropcatch_suite::analysis::{CrawlConfig, Dataset, FailurePolicy};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::types::FaultProfile;
use ens_dropcatch_suite::workload::WorldConfig;

fn main() {
    // 1. A small world and its data sources.
    let world = WorldConfig::small().with_seed(7).build();
    let subgraph = world.subgraph(SubgraphConfig::default());
    let etherscan = world.etherscan();

    // 2. A hostile network: rate-limit bursts, timeout clusters, transient
    //    server errors, truncated pages, and a permanently dead offset
    //    range. Seeded — every run injects the same faults at the same
    //    offsets, for any thread count.
    let profile = FaultProfile::named("mixed", 1337).expect("named profile");
    println!("chaos profile: {profile:?}\n");

    // 3. Collect under a Degrade policy: unfetchable pages become recorded
    //    gaps instead of aborting the crawl (the paper's own study ships
    //    with 34K unrecoverable names — losses are reported, not fatal).
    let config = CrawlConfig {
        chaos: Some(profile),
        failure: FailurePolicy::degrade(),
        threads: 4,
        subgraph_page_size: 64,
        txlist_page_size: 32,
        market_page_size: 16,
        ..CrawlConfig::default()
    };
    let (dataset, timings) = Dataset::try_collect_with(
        &subgraph,
        &etherscan,
        world.opensea(),
        world.observation_end(),
        &config,
    )
    .expect("degrade policy completes under chaos");

    // 4. The crawl-health summary.
    let report = &dataset.crawl_report;
    println!("== crawl health ==");
    println!(
        "degraded: {}   item recovery: {:.3}%   ~{} items lost",
        report.degraded,
        report.item_recovery_rate() * 100.0,
        report.lost_items_estimate
    );
    let retries = report.retries_by_kind();
    println!(
        "retries: {} (rate-limited {}, timeout {}, server-error {}, malformed {})",
        retries.total(),
        retries.rate_limited,
        retries.timeout,
        retries.server_error,
        retries.malformed
    );
    println!(
        "virtual backoff: {} ms (deterministic accounting, never slept)",
        report.backoff_virtual_ms()
    );
    println!(
        "pages: subgraph {}, txlist {}, market {}  ({:.1?} wall clock)",
        report.subgraph.pages,
        report.txlist.pages,
        report.market.pages,
        timings.total()
    );
    println!("\n== gaps ({}) ==", report.gaps.len());
    for gap in &report.gaps {
        println!("  {gap}");
    }

    // 5. The degraded dataset is still a dataset: every analysis runs on
    //    whatever was recovered.
    println!(
        "\nrecovered {} domains and {} transactions despite the faults",
        report.domains, report.transactions
    );
}
