//! Quickstart: build a simulated ENS ecosystem, run the paper's full
//! measurement pipeline against it, and print every table and figure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ens_dropcatch_suite::analysis::{run_study, DataSources, StudyConfig};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::workload::WorldConfig;

fn main() {
    // 1. Build a world: ~2,000 names, Feb 2020 – Sep 2023, seeded.
    let world = WorldConfig::small().with_seed(42).build();
    let summary = world.dataset_summary();
    println!(
        "world: {} names, {} on-chain txs, {} ENS events\n",
        summary.total_names, summary.transactions, summary.ens_events
    );

    // 2. Stand up the data sources a measurement pipeline would see: the
    //    ENS subgraph (with its real-world name-loss rate) and the
    //    transaction explorer.
    let subgraph = world.subgraph(SubgraphConfig::default());
    let etherscan = world.etherscan();
    let sources = DataSources {
        subgraph: &subgraph,
        etherscan: &etherscan,
        opensea: world.opensea(),
        oracle: world.oracle(),
        observation_end: world.observation_end(),
        crawl: Default::default(),
    };

    // 3. Run the study (crawl → detect → analyze, §3–§6 of the paper).
    let report = run_study(&sources, &StudyConfig::default());

    // 4. Print the full report: Figs 2–11, Tables 1–2.
    println!("{}", report.render());
}
