//! Victim forensics: reproduce the paper's case studies
//! (`profittrailer.eth`, `spambot.eth`, `gno.eth`) on simulated data —
//! find a dropcaught domain with misdirected funds and reconstruct its
//! whole timeline from public data only.
//!
//! ```sh
//! cargo run --release --example victim_forensics
//! ```

use ens_dropcatch_suite::analysis::{analyze_losses, detect_all, DataSources};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::workload::WorldConfig;

fn main() {
    let world = WorldConfig::medium().with_seed(1234).build();
    let subgraph = world.subgraph(SubgraphConfig::lossless());
    let etherscan = world.etherscan();
    let sources = DataSources {
        subgraph: &subgraph,
        etherscan: &etherscan,
        opensea: world.opensea(),
        oracle: world.oracle(),
        observation_end: world.observation_end(),
        crawl: Default::default(),
    };

    println!("collecting the dataset (subgraph + txlists)...");
    let dataset = sources.collect();
    let losses = analyze_losses(&dataset, world.oracle());

    // Pick the most damaging finding: the domain whose new owner received
    // the most misdirected USD.
    let worst = losses
        .findings
        .iter()
        .max_by(|a, b| a.misdirected_usd().total_cmp(&b.misdirected_usd()))
        .expect("the default world plants misdirections");

    let name = worst
        .name
        .clone()
        .unwrap_or_else(|| worst.label_hash.to_hex());
    println!("\n=== case study: {name} ===");

    // Reconstruct the registration timeline from the subgraph record.
    let record = subgraph.domain(worst.label_hash).expect("domain indexed");
    println!("\nregistration history:");
    for (i, reg) in record.registrations.iter().enumerate() {
        let expiry = record.expiry_of_registration(i).expect("has expiry");
        println!(
            "  a{}: {} held {} -> {} (paid {} + premium {})",
            i + 1,
            reg.owner,
            reg.registered_at,
            expiry,
            reg.base_cost,
            reg.premium
        );
    }
    for r in detect_all(std::slice::from_ref(record)) {
        println!(
            "  dropcaught {} days after expiry ({} days after the premium ended)",
            r.delay.as_days(),
            r.at.saturating_since(r.premium_end).as_days()
        );
    }

    // The paper's common-sender narrative, per sender.
    println!("\ncommon senders (the c addresses):");
    for s in &worst.senders {
        println!(
            "  c = {}  [{:?}]  sent {} txs to a1 while a1 held the name, \
             then {} txs (${:.0}) to a2 — and never a1 again",
            s.sender, s.kind, s.txs_to_prev, s.txs_to_new, s.usd_to_new
        );
    }
    println!(
        "\nre-registration cost: ${:.0}; misdirected income: ${:.0} — {}",
        worst.reregistration_cost_usd,
        worst.misdirected_usd(),
        if worst.misdirected_usd() > worst.reregistration_cost_usd {
            "the catch paid for itself"
        } else {
            "the catch ran at a loss"
        }
    );

    // Cross-check against the simulator's ground truth (a luxury the paper
    // does not have): was this a planted misdirection?
    let truth = world
        .truth()
        .iter()
        .find(|t| t.label.hash() == worst.label_hash)
        .expect("domain in truth");
    println!(
        "\nground truth: {} misdirected txs planted, ${:.0} total",
        truth.misdirected.len(),
        truth.misdirected.iter().map(|m| m.usd).sum::<f64>()
    );
}
