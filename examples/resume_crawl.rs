//! Crash-safe crawl walkthrough: checkpoint a collection run, kill it
//! mid-crawl with the deterministic kill-point injector, then resume from
//! the watermark and verify the final dataset is byte-for-byte identical
//! to an uninterrupted run.
//!
//! ```sh
//! cargo run --release --example resume_crawl
//! ```

use ens_dropcatch_suite::analysis::{
    CheckpointSpec, CollectError, CrawlConfig, Dataset, FailurePolicy, Metrics,
};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::types::{FaultKind, FaultProfile, KillSwitch};
use ens_dropcatch_suite::workload::WorldConfig;

fn main() {
    // 1. A small world, a hostile network, and a degrade policy — the
    //    same setup as the degraded_crawl example, but now checkpointed.
    let world = WorldConfig::small().with_names(300).with_seed(11).build();
    let subgraph = world.subgraph(SubgraphConfig::default());
    let etherscan = world.etherscan();
    let config = CrawlConfig {
        chaos: Some(FaultProfile::named("mixed", 1337).expect("named profile")),
        failure: FailurePolicy::degrade(),
        threads: 4,
        subgraph_page_size: 32,
        txlist_page_size: 16,
        market_page_size: 8,
        ..CrawlConfig::default()
    };

    // 2. The uninterrupted reference run.
    let (reference, _) = Dataset::try_collect_with(
        &subgraph,
        &etherscan,
        world.opensea(),
        world.observation_end(),
        &config,
    )
    .expect("degrade policy completes under chaos");
    let total_pages = (reference.crawl_report.subgraph.pages
        + reference.crawl_report.txlist.pages
        + reference.crawl_report.market.pages) as u64;
    println!("reference run: {total_pages} pages crawled\n");

    // 3. A checkpointed run that dies mid-crawl. The kill switch simulates
    //    process death: the drain stops cold, nothing past the last flushed
    //    checkpoint survives.
    let ckpt = std::env::temp_dir().join(format!("resume-example-{}.ckpt", std::process::id()));
    let spec = CheckpointSpec::new(&ckpt).every(4);
    let kill_at = total_pages / 2;
    let metrics = Metrics::new();
    let killed = Dataset::try_collect_checkpointed(
        &subgraph,
        &etherscan,
        world.opensea(),
        world.observation_end(),
        &config,
        &metrics,
        &spec,
        Some(KillSwitch::new(kill_at)),
    );
    match killed {
        Err(CollectError::Crawl(e)) if matches!(e.kind, FaultKind::Killed { .. }) => {
            println!("crawl killed after {kill_at} pages: {e}");
        }
        other => panic!("expected an injected kill, got {other:?}"),
    }
    println!("checkpoint retained at {}\n", ckpt.display());

    // 4. Resume. The loader verifies the config fingerprint, splices the
    //    committed shards back in, and the crawler only refetches what was
    //    never committed — here with a different thread count, which is
    //    presentation, not content.
    let resume_config = CrawlConfig {
        threads: 1,
        ..config.clone()
    };
    let metrics = Metrics::new();
    let (resumed, _) = Dataset::try_collect_checkpointed(
        &subgraph,
        &etherscan,
        world.opensea(),
        world.observation_end(),
        &resume_config,
        &metrics,
        &spec.clone().resuming(),
        None,
    )
    .expect("resume completes");
    let snap = metrics.snapshot();
    println!(
        "resumed: spliced {} committed pages, refetched the rest",
        snap.counter("checkpoint/skipped_pages")
    );

    // 5. The headline guarantee: the resumed dataset is byte-identical to
    //    the uninterrupted one, and the checkpoint is gone.
    let a = reference.to_json().expect("serializes");
    let b = resumed.to_json().expect("serializes");
    assert_eq!(a, b, "resumed dataset diverged from the reference");
    assert!(!ckpt.exists(), "a completed run deletes its checkpoint");
    println!(
        "byte-identical: {} bytes of dataset JSON match the uninterrupted run",
        a.len()
    );
}
