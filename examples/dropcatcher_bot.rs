//! A dropcatcher's-eye view: drive the ENS protocol directly, the way the
//! paper's most active addresses (5,070 / 3,165 / 2,421 catches) must.
//!
//! The bot watches the registrar for names leaving their grace period,
//! scores them with the same lexical heuristics the analysis uses, and
//! registers the attractive ones the moment their premium hits zero —
//! then we check what landed in its wallet.
//!
//! ```sh
//! cargo run --release --example dropcatcher_bot
//! ```

use ens_dropcatch_suite::chain::Chain;
use ens_dropcatch_suite::ens::{commit_and_register, EnsSystem, GRACE_PERIOD, PREMIUM_PERIOD};
use ens_dropcatch_suite::lexicon;
use ens_dropcatch_suite::oracle;
use ens_dropcatch_suite::types::{Address, Duration, Label, Timestamp, Wei};

/// How attractive is a label to our bot? (Same signals as the paper's
/// Table 1: short, wordy, digit-free names.)
fn score(label: &Label) -> f64 {
    let s = label.as_str();
    let mut score = 1.0;
    if lexicon::is_dictionary_word(s) {
        score += 3.0;
    } else if lexicon::contains_dictionary_word(s) {
        score += 1.0;
    }
    if lexicon::contains_digit(s) {
        score -= 1.5;
    }
    if lexicon::contains_hyphen(s) || lexicon::contains_underscore(s) {
        score -= 2.0;
    }
    score += (10.0 - s.len() as f64).max(0.0) * 0.3;
    score
}

fn main() {
    let price_oracle = oracle::PriceOracle::new().without_noise();
    let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
    let mut ens = EnsSystem::new();

    // A population of owners registers names; some will forget to renew.
    let names = [
        ("gold", true),            // dictionary word — will lapse
        ("whale", true),           // dictionary word — will lapse
        ("crypto-whale_99", true), // punctuation-ridden — will lapse
        ("j8k2x9", true),          // alphanumeric noise — will lapse
        ("mywallet", false),       // renewed by its owner
    ];
    let bot = Address::derive(b"dropcatcher-bot");
    chain.mint(bot, Wei::from_eth(50));

    let mut lapsing = Vec::new();
    for (i, (name, lapses)) in names.iter().enumerate() {
        let owner = Address::derive_indexed("owner", i as u64);
        chain.mint(owner, Wei::from_eth(10));
        let label = Label::parse(name).expect("valid label");
        let px = price_oracle.cents_per_eth(chain.now());
        commit_and_register(
            &mut ens,
            &mut chain,
            &label,
            owner,
            i as u64,
            Duration::from_years(1),
            px,
            Some(owner),
        )
        .expect("registration succeeds");
        println!("registered {name}.eth to {owner}");
        if *lapses {
            lapsing.push(label);
        } else {
            let px = price_oracle.cents_per_eth(chain.now());
            ens.renew(&mut chain, &label, owner, Duration::from_years(5), px)
                .expect("renewal succeeds");
        }
    }

    // A year passes; the un-renewed names expire, then sit in their 90-day
    // grace, then their 21-day premium auction.
    chain.advance(Duration::from_years(1) + GRACE_PERIOD + PREMIUM_PERIOD);
    println!(
        "\n-- premium windows over; the bot wakes up at {} --",
        chain.now()
    );

    let mut spent = Wei::ZERO;
    for label in &lapsing {
        let s = score(label);
        let available = ens.available(label, chain.now());
        let (rent, premium) = ens.price_usd(label, Duration::from_years(1), chain.now());
        println!(
            "{label}.eth  available={available}  score={s:+.1}  rent={rent}  premium={premium}"
        );
        if !available || s < 1.0 {
            println!("  -> skipped");
            continue;
        }
        let px = price_oracle.cents_per_eth(chain.now());
        let receipt = commit_and_register(
            &mut ens,
            &mut chain,
            label,
            bot,
            1_000,
            Duration::from_years(1),
            px,
            Some(bot),
        )
        .expect("catch succeeds");
        spent += receipt.total();
        println!("  -> CAUGHT for {}", receipt.total());
    }

    // Senders who still use the old names now pay the bot.
    let confused_sender = Address::derive(b"confused-sender");
    chain.mint(confused_sender, Wei::from_eth(5));
    let gold = ens
        .resolve(&"gold.eth".parse().expect("valid name"))
        .expect("gold.eth still resolves");
    chain
        .transfer(
            confused_sender,
            gold,
            Wei::from_eth(2),
            ens_dropcatch_suite::chain::TxKind::Transfer,
        )
        .expect("transfer succeeds");

    println!("\n-- outcome --");
    println!("bot spent:    {spent}");
    println!("bot balance:  {}", chain.balance(bot));
    assert_eq!(gold, bot, "gold.eth now resolves to the bot");
    println!("gold.eth resolves to the bot; the 2 ETH meant for its old owner is gone.");
}
