//! The countermeasure the paper proposes (§6) — and, because the whole
//! ecosystem is simulated here, also *measures*: walk a name through its
//! lifecycle, resolve it at each stage in all seven production wallets of
//! Table 2 and in a patched wallet, then quantify how much of the world's
//! misdirected value the warning would have intercepted.
//!
//! ```sh
//! cargo run --release --example wallet_countermeasure
//! ```

use ens_dropcatch_suite::analysis::{analyze_losses, DataSources};
use ens_dropcatch_suite::chain::Chain;
use ens_dropcatch_suite::ens::{commit_and_register, EnsSystem, GRACE_PERIOD, PREMIUM_PERIOD};
use ens_dropcatch_suite::subgraph::SubgraphConfig;
use ens_dropcatch_suite::types::{Address, Duration, EnsName, Timestamp, Wei};
use ens_dropcatch_suite::wallets::production_wallets;
use ens_dropcatch_suite::workload::WorldConfig;

fn resolve_everywhere(ens: &EnsSystem, name: &EnsName, now: Timestamp, stage: &str) {
    println!("\n-- {stage} ({now}) --");
    let patched = production_wallets().remove(0).with_countermeasure();
    for wallet in production_wallets() {
        let r = wallet.resolve(ens, name, now);
        println!(
            "  {:14} -> {:44} warning: {}",
            wallet.name,
            r.address.map_or("(none)".into(), |a| a.to_hex()),
            r.warning.map_or("none".to_string(), |w| format!("{w:?}"))
        );
    }
    let r = patched.resolve(ens, name, now);
    println!(
        "  {:14} -> {:44} warning: {}",
        "PATCHED",
        r.address.map_or("(none)".into(), |a| a.to_hex()),
        r.warning.map_or("none".to_string(), |w| format!("{w:?}"))
    );
}

fn main() {
    // Part 1: the Table 2 experiment, replayed.
    let price = 200_000; // $2,000/ETH
    let mut chain = Chain::new(Timestamp::from_ymd(2021, 1, 1));
    let mut ens = EnsSystem::new();
    let alice = Address::derive(b"alice");
    let mallory = Address::derive(b"mallory");
    chain.mint(alice, Wei::from_eth(10));
    chain.mint(mallory, Wei::from_eth(1_000_000));

    let name: EnsName = "gold.eth".parse().expect("valid");
    commit_and_register(
        &mut ens,
        &mut chain,
        name.label(),
        alice,
        1,
        Duration::from_years(1),
        price,
        Some(alice),
    )
    .expect("registration succeeds");

    resolve_everywhere(&ens, &name, chain.now(), "freshly registered to alice");

    chain.advance(Duration::from_years(1) + Duration::from_days(30));
    resolve_everywhere(
        &ens,
        &name,
        chain.now(),
        "EXPIRED, in grace — still resolving to alice",
    );

    chain.advance(GRACE_PERIOD + PREMIUM_PERIOD);
    commit_and_register(
        &mut ens,
        &mut chain,
        name.label(),
        mallory,
        2,
        Duration::from_years(1),
        price,
        Some(mallory),
    )
    .expect("catch succeeds");
    chain.advance(Duration::from_days(3));
    resolve_everywhere(
        &ens,
        &name,
        chain.now(),
        "RE-REGISTERED by mallory 3 days ago",
    );

    // Part 2: how much would the warning actually save, ecosystem-wide?
    println!("\n== ecosystem-wide evaluation ==");
    let world = WorldConfig::medium().with_seed(77).build();
    let subgraph = world.subgraph(SubgraphConfig::default());
    let etherscan = world.etherscan();
    let sources = DataSources {
        subgraph: &subgraph,
        etherscan: &etherscan,
        opensea: world.opensea(),
        oracle: world.oracle(),
        observation_end: world.observation_end(),
        crawl: Default::default(),
    };
    let dataset = sources.collect();
    let losses = analyze_losses(&dataset, world.oracle());
    println!("  policy                         intercepts   annoys (false-positive rate)");
    for window_days in [7u64, 30, 90, 365] {
        let report = ens_dropcatch_suite::analysis::countermeasures::evaluate_countermeasure(
            &losses,
            &dataset,
            Duration::from_days(window_days),
        );
        println!(
            "  naive freshness, {window_days:>3}d         {:5.1}%       {:5.1}%",
            report.risk_policy.interception_rate() * 100.0,
            report.risk_policy.annoyance_rate() * 100.0,
        );
        println!(
            "  re-registration, {window_days:>3}d         {:5.1}%       {:5.2}%",
            report.rereg_policy.interception_rate() * 100.0,
            report.rereg_policy.annoyance_rate() * 100.0,
        );
        if window_days == 365 {
            println!(
                "  reverse-record check           {:5.1}%       {:5.1}%",
                report.reverse_policy.interception_rate() * 100.0,
                report.reverse_policy.annoyance_rate() * 100.0,
            );
            println!(
                "  combined                       {:5.1}%       {:5.1}%",
                report.combined_policy.interception_rate() * 100.0,
                report.combined_policy.annoyance_rate() * 100.0,
            );
        }
    }
}
